"""End-to-end tests for the placement server over real sockets.

Every test runs a real :class:`PlacementServer` (via
:class:`ServerHarness`) and talks HTTP to it, so request parsing,
coalescing, admission, quota, deadline and drain behavior are exercised
exactly as a production client would see them.
"""

import json
import re
import signal
import subprocess
import sys
import threading
from collections import Counter

import pytest

from repro.serve import ServerConfig, ServerHarness
from tests.serve.conftest import CHAIN_DIMS, make_service


@pytest.fixture
def harness(chain_payload):
    with ServerHarness(
        make_service(), ServerConfig(window_seconds=0.002, max_batch=16)
    ) as running:
        yield running


class TestEndpoints:
    def test_place_round_trip(self, harness, chain_payload):
        response = harness.client().place(chain_payload, CHAIN_DIMS)
        assert response.ok
        assert len(response.payload["rects"]) == 4
        assert response.payload["source"] in ("structure", "nearest", "fallback")

    def test_place_batch_reports_dedup(self, harness, chain_payload):
        response = harness.client().place_batch(chain_payload, [CHAIN_DIMS] * 5)
        assert response.ok
        assert len(response.payload["results"]) == 5
        assert response.payload["unique_queries"] == 1
        assert response.payload["duplicate_queries"] == 4

    def test_route_returns_routing_stats(self, harness, chain_payload):
        response = harness.client().route(chain_payload, CHAIN_DIMS)
        assert response.ok
        assert "routing" in response.payload
        assert "net_wirelengths" in response.payload
        assert response.payload["failed_nets"] == []

    def test_healthz(self, harness):
        response = harness.client().healthz()
        assert response.ok
        assert response.payload["status"] == "ok"
        assert response.payload["inflight"] == 0

    def test_metrics_exposition_merges_server_and_service(self, harness, chain_payload):
        client = harness.client()
        assert client.place(chain_payload, CHAIN_DIMS).ok
        response = client.metrics()
        assert response.ok
        assert "serve_requests" in response.payload
        assert "service_queries" in response.payload

    def test_keep_alive_serves_many_requests_per_connection(
        self, harness, chain_payload
    ):
        client = harness.client()
        for _ in range(5):
            assert client.place(chain_payload, CHAIN_DIMS).ok
        snapshot = harness.server.metrics.snapshot()
        assert snapshot["serve.requests"] == 5
        assert snapshot["serve.connections"] == 1


class TestCoalescing:
    def test_concurrent_places_coalesce_into_fewer_dispatches(
        self, harness, chain_payload
    ):
        # Warm the structure first so coalesced requests hit the fast path.
        harness.client().place(chain_payload, CHAIN_DIMS)
        barrier = threading.Barrier(8)
        statuses = []

        def fire():
            client = harness.client()
            barrier.wait()
            statuses.append(client.place(chain_payload, CHAIN_DIMS).status)

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses == [200] * 8
        snapshot = harness.server.metrics.snapshot()
        # 9 single-query requests answered by strictly fewer batch dispatches.
        assert snapshot["serve.coalesced_queries"] == 9
        assert snapshot["serve.dispatches"] < 9


class TestErrors:
    def test_unknown_path_is_404(self, harness):
        assert harness.client().request("GET", "/nope").status == 404

    def test_wrong_verb_is_405(self, harness):
        assert harness.client().request("POST", "/healthz").status == 405
        assert harness.client().request("GET", "/place").status == 405

    def test_malformed_json_is_400(self, harness):
        client = harness.client()
        response = client.request("POST", "/place")
        assert response.status == 400
        assert response.payload["error"] == "bad_request"

    def test_dims_mismatch_is_400(self, harness, chain_payload):
        response = harness.client().place(chain_payload, [[5, 5]])
        assert response.status == 400
        assert "4 entries" in response.payload["message"]

    def test_unknown_circuit_is_400(self, harness):
        response = harness.client().place("no_such_benchmark", CHAIN_DIMS)
        assert response.status == 400
        assert "unknown benchmark" in response.payload["message"]

    def test_oversized_body_is_413(self, chain_payload):
        config = ServerConfig(max_body_bytes=256)
        with ServerHarness(make_service(), config) as harness:
            response = harness.client().place(chain_payload, CHAIN_DIMS)
            assert response.status == 413


class TestBackpressure:
    def test_overload_sheds_with_429_and_never_hangs(self, chain_payload):
        config = ServerConfig(
            window_seconds=0.05, max_batch=4, max_inflight=2
        )
        with ServerHarness(make_service(), config) as harness:
            harness.client().place(chain_payload, CHAIN_DIMS)  # warm
            results = []

            def fire():
                response = harness.client().place(chain_payload, CHAIN_DIMS)
                results.append((response.status, response.retry_after))

            threads = [threading.Thread(target=fire) for _ in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                # A shed must answer promptly, not park the client.
                thread.join(timeout=30.0)
                assert not thread.is_alive()
            statuses = Counter(status for status, _ in results)
            assert set(statuses) == {200, 429}
            assert statuses[429] >= 1
            for status, retry_after in results:
                if status == 429:
                    assert retry_after is not None and retry_after >= 1

    def test_tenant_quota_throttles_only_that_tenant(self, chain_payload):
        config = ServerConfig(
            window_seconds=0.001, quota_rate=0.001, quota_burst=2.0
        )
        with ServerHarness(make_service(), config) as harness:
            alice = harness.client(tenant="alice")
            codes = [alice.place(chain_payload, CHAIN_DIMS).status for _ in range(4)]
            assert codes == [200, 200, 429, 429]
            throttled = alice.place(chain_payload, CHAIN_DIMS)
            assert throttled.payload["error"] == "quota_exceeded"
            bob = harness.client(tenant="bob")
            assert bob.place(chain_payload, CHAIN_DIMS).ok

    def test_expired_deadline_is_504(self, chain_payload):
        config = ServerConfig(window_seconds=0.25, max_batch=64)
        with ServerHarness(make_service(), config) as harness:
            client = harness.client()
            client.place(chain_payload, CHAIN_DIMS)  # warm
            # A fraction of the coalesce window: expires while queued.
            response = client.place(chain_payload, CHAIN_DIMS, deadline_ms=0.01)
            assert response.status == 504
            assert response.payload["error"] == "deadline_exceeded"


class TestDrain:
    def test_draining_server_answers_503(self, harness, chain_payload):
        client = harness.client()
        assert client.place(chain_payload, CHAIN_DIMS).ok
        harness.drain()
        response = client.place(chain_payload, CHAIN_DIMS)
        assert response.status == 503
        assert response.payload["error"] == "draining"

    def test_drain_loses_no_accepted_request(self, chain_payload):
        config = ServerConfig(window_seconds=0.01, max_batch=8)
        harness = ServerHarness(make_service(), config).start()
        harness.client().place(chain_payload, CHAIN_DIMS)  # warm
        statuses = []
        stop = threading.Event()

        def hammer():
            client = harness.client()
            while not stop.is_set():
                try:
                    response = client.place(chain_payload, CHAIN_DIMS)
                except OSError:
                    break  # connection refused after the listener closed
                statuses.append(response.status)
                if response.status == 503:
                    break

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        # Drain while traffic is in flight.
        import time

        time.sleep(0.15)
        harness.drain()
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        harness.stop()
        counts = Counter(statuses)
        # Zero-loss: every accepted request answered 200; the rest saw a
        # clean 503, never an error or a hang.
        assert set(counts) <= {200, 503}
        assert counts[200] >= 1


class TestCli:
    def test_cli_serves_and_drains_on_sigterm(self, chain_payload):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--port",
                "0",
                "--window-ms",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on http://([\d.]+):(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            import http.client

            connection = http.client.HTTPConnection(
                match.group(1), int(match.group(2)), timeout=60
            )
            connection.request(
                "POST",
                "/place",
                body=json.dumps({"circuit": chain_payload, "dims": CHAIN_DIMS}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            response.read()
            connection.close()
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "placement server drained cleanly" in output
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate(timeout=10)
