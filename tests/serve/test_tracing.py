"""Request-scoped tracing, the debug plane, SLO burn, and the flight ring.

The acceptance spine of the observability plane: one traced request
through a real :class:`ServerHarness` must yield one *connected* span
tree — HTTP request → coalesced dispatch → ``instantiate_batch`` →
worker-side placement spans — and the ``/debug/*`` endpoints must report
the sampler, SLO burn, and metrics that traffic produced.
"""

import json
import threading

import pytest

from repro import obs
from repro.core.serialization import circuit_to_dict
from repro.parallel.sharding import ShardedStructureRegistry
from repro.serve import ServerConfig, ServerHarness
from repro.service.engine import PlacementService
from tests.conftest import build_chain_circuit
from tests.serve.conftest import CHAIN_DIMS, SMOKE, make_service


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with a pristine obs substrate."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def chain_data():
    return circuit_to_dict(build_chain_circuit())


def run_harness(config=None, service=None, requests=None, **client_kwargs):
    """Start a harness, fire ``requests(client)``, return its result."""
    with ServerHarness(service or make_service(), config or ServerConfig()) as harness:
        client = harness.client(**client_kwargs)
        return requests(client) if requests is not None else None


def spans_by_id(records):
    return {record["span_id"]: record for record in records}


class TestRequestSpans:
    def test_request_id_is_minted_and_echoed(self):
        def go(client):
            return client.healthz()

        response = run_harness(requests=go)
        assert response.ok
        assert response.request_id  # minted server-side even untraced

    def test_caller_request_id_is_echoed_back(self):
        def go(client):
            return client.request("GET", "/healthz", request_id="my-req-1")

        assert run_harness(requests=go).request_id == "my-req-1"

    def test_error_responses_carry_the_request_id_too(self):
        def go(client):
            return client.request("POST", "/place", {"circuit": "nope"},
                                  request_id="bad-1")

        response = run_harness(requests=go)
        assert response.status == 400
        assert response.request_id == "bad-1"

    def test_caller_trace_id_roots_the_server_trace(self, chain_data):
        obs.configure(enabled=True)

        def go(client):
            return client.request(
                "POST",
                "/place",
                {"circuit": chain_data, "dims": CHAIN_DIMS},
                trace_id="caller-trace-1",
            )

        assert run_harness(requests=go).ok
        records = obs.spans_snapshot("caller-trace-1")
        names = {record["name"] for record in records}
        assert "serve.request" in names
        assert "serve.dispatch" in names

    def test_untraced_requests_produce_no_spans(self, chain_data):
        def go(client):
            return client.request(
                "POST", "/place", {"circuit": chain_data, "dims": CHAIN_DIMS}
            )

        assert run_harness(requests=go).ok
        assert obs.spans_snapshot() == []


class TestConnectedSpanTree:
    def test_traced_place_yields_one_connected_tree(self, chain_data):
        obs.configure(enabled=True)

        def go(client):
            return client.request(
                "POST",
                "/place",
                {"circuit": chain_data, "dims": CHAIN_DIMS},
                trace_id="accept-1",
            )

        assert run_harness(requests=go).ok
        records = obs.spans_snapshot("accept-1")
        by_id = spans_by_id(records)
        roots = [record for record in records if record["parent_id"] is None]
        assert [record["name"] for record in roots] == ["serve.request"]
        # Fully connected: every non-root span's parent is in the trace.
        for record in records:
            if record["parent_id"] is not None:
                assert record["parent_id"] in by_id, record["name"]
        names = {record["name"] for record in records}
        assert {"serve.request", "serve.dispatch", "service.instantiate_batch"} <= names

    def test_traced_request_connects_through_worker_processes(self, tmp_path, chain_data):
        """The acceptance tree: request → batch window → instantiate_batch
        → worker-side placement spans, one trace, fully connected."""
        obs.configure(enabled=True)
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        config = ServerConfig(service_workers=2, window_seconds=0.02, max_batch=8)

        def go(client):
            return client.request(
                "POST",
                "/place_batch",
                {"circuit": chain_data, "dims_batch": [CHAIN_DIMS] * 8},
                trace_id="accept-workers",
            )

        response = run_harness(config=config, service=service, requests=go)
        assert response.ok
        records = obs.spans_snapshot("accept-workers")
        by_id = spans_by_id(records)
        roots = [record for record in records if record["parent_id"] is None]
        assert [record["name"] for record in roots] == ["serve.request"]
        for record in records:
            if record["parent_id"] is not None:
                assert record["parent_id"] in by_id, record["name"]
        names = {record["name"] for record in records}
        assert "service.instantiate_batch" in names
        assert any(name.startswith("worker.") for name in names)

    def test_batch_span_links_every_coalesced_request_trace(self, chain_data):
        obs.configure(enabled=True)
        # A wide window coalesces the pilot's requests into one batch.
        config = ServerConfig(window_seconds=0.05, max_batch=16)

        def fire(harness, trace_id, results):
            client = harness.client()
            results[trace_id] = client.request(
                "POST",
                "/place",
                {"circuit": chain_data, "dims": CHAIN_DIMS},
                trace_id=trace_id,
            )
            client.close()

        with ServerHarness(make_service(), config) as harness:
            results = {}
            trace_ids = [f"ride{i}" for i in range(3)]
            threads = [
                threading.Thread(target=fire, args=(harness, tid, results))
                for tid in trace_ids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert all(results[tid].ok for tid in trace_ids)
        dispatches = [
            record
            for record in obs.spans_snapshot()
            if record["name"] == "serve.dispatch"
        ]
        assert dispatches
        linked = set()
        for record in dispatches:
            linked.update(record["attrs"].get("links", "").split(","))
            assert record["attrs"].get("batch_id")
        # Every rider's trace is named by some batch's links attribute.
        assert set(trace_ids) <= linked


class TestDebugEndpoints:
    def test_statusz_reports_uptime_config_and_subsystems(self):
        def go(client):
            client.healthz()
            return client.statusz()

        response = run_harness(requests=go)
        assert response.ok
        payload = response.payload
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0.0
        assert payload["config"]["max_inflight"] == 256
        assert {"availability", "latency"} == {o["name"] for o in payload["slo"]}
        assert "admission" in payload and "quotas" in payload
        assert payload["tracing"]["enabled"] is False

    def test_statusz_burn_rate_is_correct_under_slow_load(self, chain_data):
        """Acceptance: an impossible latency threshold makes every request
        slow, and statusz must report burn = (bad/total)/(1 - target)."""
        config = ServerConfig(
            slo_latency_target=0.9, slo_latency_threshold_seconds=1e-9
        )

        def go(client):
            for _ in range(10):
                assert client.request(
                    "POST", "/place", {"circuit": chain_data, "dims": CHAIN_DIMS}
                ).ok
            return client.statusz()

        payload = run_harness(config=config, requests=go).payload
        latency = next(o for o in payload["slo"] if o["name"] == "latency")
        assert latency["total"] == 10
        assert latency["good"] == 0
        # All 10 requests breached a 0.9 target: burn = 1.0 / 0.1 = 10x.
        assert latency["burn_rate"] == pytest.approx(10.0)
        availability = next(o for o in payload["slo"] if o["name"] == "availability")
        assert availability["burn_rate"] == pytest.approx(0.0)

    def test_tracez_serves_sampled_trace_summaries(self, chain_data):
        obs.configure(enabled=True)
        config = ServerConfig(trace_min_samples=2)

        def go(client):
            client.request(
                "POST", "/place", {"circuit": "nope", "dims": CHAIN_DIMS}
            )  # 400 -> not an error keep (client fault), but sealed
            client.request(
                "POST",
                "/place",
                {"circuit": chain_data, "dims": CHAIN_DIMS},
                deadline_ms=0.0001,
            )  # expires in the coalesce queue -> 504 -> kept
            return client.tracez()

        response = run_harness(config=config, requests=go)
        assert response.ok
        summaries = response.payload["traces"]
        assert response.payload["sampler"]["sealed"] >= 2
        kept_categories = {entry["category"] for entry in summaries}
        assert "error" in kept_categories

    def test_tracez_single_trace_lookup_and_chrome_rendering(self, chain_data):
        obs.configure(enabled=True)
        config = ServerConfig(trace_min_samples=1)

        def go(client):
            client.request(
                "POST",
                "/place",
                {"circuit": chain_data, "dims": CHAIN_DIMS},
                trace_id="lookup-1",
                deadline_ms=0.0001,  # 504: guaranteed keep
            )
            spans = client.tracez(trace_id="lookup-1")
            chrome = client.tracez(trace_id="lookup-1", fmt="chrome")
            missing = client.tracez(trace_id="never-kept")
            return spans, chrome, missing

        spans, chrome, missing = run_harness(config=config, requests=go)
        assert spans.ok
        assert {record["trace_id"] for record in spans.payload["spans"]} == {"lookup-1"}
        assert chrome.ok
        events = chrome.payload["traceEvents"]
        assert any(event.get("ph") == "X" for event in events)
        assert missing.status == 404

    def test_debug_vars_returns_metric_snapshots(self, chain_data):
        def go(client):
            client.request(
                "POST", "/place", {"circuit": chain_data, "dims": CHAIN_DIMS}
            )
            return client.debug_vars()

        response = run_harness(requests=go)
        assert response.ok
        assert response.payload["serve"]["serve.requests"] >= 1
        assert "service" in response.payload

    def test_debug_endpoints_reject_post(self):
        def go(client):
            return client.request("POST", "/debug/statusz", {})

        assert run_harness(requests=go).status == 405


class TestAccessLogAndFlight:
    def test_access_log_lines_carry_the_request_schema(self, tmp_path, chain_data):
        log_path = tmp_path / "access.jsonl"
        config = ServerConfig(access_log_path=str(log_path))

        def go(client):
            assert client.request(
                "POST",
                "/place",
                {"circuit": chain_data, "dims": CHAIN_DIMS},
                request_id="logged-1",
            ).ok
            client.request("POST", "/place", {"circuit": "nope"})

        run_harness(config=config, requests=go, tenant="acme")
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert len(lines) == 2
        ok_line = next(line for line in lines if line["status"] == 200)
        assert ok_line["request_id"] == "logged-1"
        assert ok_line["tenant"] == "acme"
        assert ok_line["route"] == "/place"
        assert ok_line["outcome"] == "ok"
        assert ok_line["latency_seconds"] > 0.0
        assert ok_line["batch_id"]  # the coalesced batch this request rode
        assert ok_line["cost"] == 1
        bad_line = next(line for line in lines if line["status"] == 400)
        assert bad_line["outcome"] == "bad_request"
        assert bad_line["batch_id"] is None

    def test_flight_ring_dumps_on_drain(self, tmp_path, chain_data):
        dump_path = tmp_path / "flight.jsonl"
        config = ServerConfig(flight_dump_path=str(dump_path), flight_records=4)

        with ServerHarness(make_service(), config) as harness:
            client = harness.client()
            for index in range(6):
                client.request(
                    "POST",
                    "/place",
                    {"circuit": chain_data, "dims": CHAIN_DIMS},
                    request_id=f"fl{index}",
                )
            assert not dump_path.exists()  # only dumped at drain / on 500s
        lines = [json.loads(line) for line in dump_path.read_text().splitlines()]
        # Ring of 4: only the last four requests survive.
        assert [line["request_id"] for line in lines] == ["fl2", "fl3", "fl4", "fl5"]

    def test_repeated_harness_sessions_do_not_leak_trace_taps(self, chain_data):
        obs.configure(enabled=True)

        def one_request(client):
            return client.request(
                "POST", "/place", {"circuit": chain_data, "dims": CHAIN_DIMS}
            )

        config = ServerConfig(trace_min_samples=1)
        with ServerHarness(make_service(), config) as harness:
            assert one_request(harness.client()).ok
            first_server = harness.server
        sealed_after_session_one = first_server._traces.stats()["sealed"]
        assert sealed_after_session_one >= 1
        with ServerHarness(make_service(), config) as harness:
            assert one_request(harness.client()).ok
        # Session two's spans never reached session one's sampler.
        assert first_server._traces.stats()["sealed"] == sealed_after_session_one


class TestTracingStaysCheap:
    def test_rng_trajectories_identical_with_tracing_on(self, chain_data):
        """Golden determinism: the placement a traced server returns is
        bit-identical to the untraced one."""

        def go(client):
            return client.request(
                "POST", "/place", {"circuit": chain_data, "dims": CHAIN_DIMS}
            )

        untraced = run_harness(requests=go)
        obs.reset()
        obs.configure(enabled=True)
        traced = run_harness(requests=go)
        assert untraced.ok and traced.ok
        assert untraced.payload["rects"] == traced.payload["rects"]
        assert untraced.payload["total_cost"] == traced.payload["total_cost"]
