"""Tests for admission control (inflight budget) and per-tenant quotas."""

import pytest

from repro.serve.admission import MIN_RETRY_AFTER, AdmissionController
from repro.serve.protocol import Overloaded, QuotaExceeded
from repro.serve.quotas import TenantQuotas, TokenBucket


class FakeClock:
    """Deterministic monotonic clock the tests advance explicitly."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionController:
    def test_admits_until_the_budget_is_full(self):
        controller = AdmissionController(max_inflight=3)
        tickets = [controller.admit() for _ in range(3)]
        assert controller.inflight == 3
        with pytest.raises(Overloaded):
            controller.admit()
        for ticket in tickets:
            ticket.release()
        assert controller.idle

    def test_release_is_idempotent(self):
        controller = AdmissionController(max_inflight=2)
        ticket = controller.admit()
        ticket.release()
        ticket.release()
        assert controller.inflight == 0
        # A double release must not free slots it never held.
        other = controller.admit(2)
        with pytest.raises(Overloaded):
            controller.admit()
        other.release()

    def test_ticket_releases_via_context_manager(self):
        controller = AdmissionController(max_inflight=1)
        with controller.admit():
            assert controller.inflight == 1
        assert controller.idle

    def test_batch_cost_counts_against_the_budget(self):
        controller = AdmissionController(max_inflight=10)
        ticket = controller.admit(8)
        with pytest.raises(Overloaded):
            controller.admit(3)
        assert controller.admit(2).cost == 2
        ticket.release()

    def test_oversized_request_admits_only_when_idle(self):
        controller = AdmissionController(max_inflight=4)
        # Rejecting a batch larger than the whole budget forever would be
        # a livelock; it runs alone instead.
        big = controller.admit(10)
        with pytest.raises(Overloaded):
            controller.admit(1)
        big.release()
        assert controller.admit(1).cost == 1

    def test_retry_after_has_a_floor_and_tracks_service_time(self):
        controller = AdmissionController(max_inflight=2, base_retry_after=0.0)
        assert controller.retry_after() == MIN_RETRY_AFTER
        for _ in range(50):
            controller.observe_service_time(2.0)
        assert controller.retry_after() == pytest.approx(2.0, rel=0.1)

    def test_first_observation_replaces_the_synthetic_seed(self):
        # base_retry_after seeds the hint before any traffic, but it is a
        # guess, not a sample — the first real observation must replace it
        # outright instead of blending with it.
        controller = AdmissionController(max_inflight=2, base_retry_after=10.0)
        assert controller.retry_after() == 10.0
        controller.observe_service_time(0.5)
        assert controller.retry_after() == pytest.approx(0.5)

    def test_second_observation_blends_with_ewma_alpha(self):
        from repro.serve.admission import EWMA_ALPHA

        controller = AdmissionController(max_inflight=2, base_retry_after=10.0)
        controller.observe_service_time(1.0)
        controller.observe_service_time(2.0)
        # first sample 1.0, second blends: 1.0 + alpha * (2.0 - 1.0)
        assert controller.retry_after() == pytest.approx(1.0 + EWMA_ALPHA * 1.0)

    def test_shed_error_carries_the_retry_hint(self):
        controller = AdmissionController(max_inflight=1)
        controller.admit()
        with pytest.raises(Overloaded) as excinfo:
            controller.admit()
        assert excinfo.value.retry_after >= MIN_RETRY_AFTER
        assert excinfo.value.status == 429

    def test_stats_expose_the_accounting(self):
        controller = AdmissionController(max_inflight=2)
        controller.admit(2)
        with pytest.raises(Overloaded):
            controller.admit()
        stats = controller.stats()
        assert stats["admitted"] == 1
        assert stats["admitted_cost"] == 2
        assert stats["shed"] == 1
        assert stats["inflight"] == 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_take() == 0.0
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_take() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 3.0

    def test_oversized_cost_charges_the_full_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=clock)
        # A cost above burst can never be covered outright; it drains the
        # bucket instead of being rejected forever.
        assert bucket.try_take(50) == 0.0
        assert bucket.tokens == 0.0
        wait = bucket.try_take(50)
        assert wait == pytest.approx(5.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTenantQuotas:
    def test_disabled_quotas_always_pass(self):
        quotas = TenantQuotas(rate=None)
        assert not quotas.enabled
        for _ in range(1000):
            quotas.check("anyone")

    def test_tenants_throttle_independently(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=2.0, clock=clock)
        quotas.check("alice")
        quotas.check("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.check("alice")
        assert excinfo.value.retry_after == pytest.approx(1.0)
        # Bob's bucket is untouched by Alice's exhaustion.
        quotas.check("bob")
        clock.advance(1.0)
        quotas.check("alice")

    def test_burst_defaults_to_twice_the_rate(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=3.0, clock=clock)
        for _ in range(6):
            quotas.check("alice")
        with pytest.raises(QuotaExceeded):
            quotas.check("alice")

    def test_overrides_take_precedence(self):
        clock = FakeClock()
        quotas = TenantQuotas(
            rate=1.0, burst=1.0, overrides={"vip": (100.0, 50.0)}, clock=clock
        )
        assert quotas.enabled
        for _ in range(50):
            quotas.check("vip")
        quotas.check("basic")
        with pytest.raises(QuotaExceeded):
            quotas.check("basic")

    def test_stats_track_granted_and_throttled(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=1.0, clock=clock)
        quotas.check("alice")
        with pytest.raises(QuotaExceeded):
            quotas.check("alice")
        stats = quotas.stats()
        assert stats["alice"]["granted"] == 1
        assert stats["alice"]["throttled"] == 1
        assert stats["alice"]["tokens"] == 0.0
