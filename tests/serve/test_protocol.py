"""Tests for the serve wire protocol: parsing, errors, circuit resolution."""

import json

import pytest

from repro.serve.protocol import (
    BadRequest,
    CircuitResolver,
    DeadlineExceeded,
    HttpRequest,
    Overloaded,
    QuotaExceeded,
    ServeError,
    ServerDraining,
    error_response,
    json_response,
    mint_request_id,
    parse_dims,
    parse_dims_batch,
    render_response,
    with_header,
)
from tests.conftest import build_chain_circuit


def make_request(headers=None, body=b""):
    return HttpRequest(method="POST", path="/place", headers=headers or {}, body=body)


class TestHttpRequest:
    def test_empty_body_decodes_to_empty_object(self):
        assert make_request().json() == {}

    def test_json_body_round_trips(self):
        request = make_request(body=json.dumps({"dims": [[1, 2]]}).encode())
        assert request.json() == {"dims": [[1, 2]]}

    def test_invalid_json_raises_bad_request(self):
        with pytest.raises(BadRequest, match="not valid JSON"):
            make_request(body=b"{nope").json()

    def test_non_object_body_raises_bad_request(self):
        with pytest.raises(BadRequest, match="JSON object"):
            make_request(body=b"[1, 2]").json()

    def test_tenant_defaults_to_anonymous(self):
        assert make_request().tenant == "anonymous"
        assert make_request(headers={"x-tenant": "  "}).tenant == "anonymous"
        assert make_request(headers={"x-tenant": " alice "}).tenant == "alice"

    def test_deadline_header_parses_to_seconds(self):
        assert make_request().deadline_seconds is None
        request = make_request(headers={"x-deadline-ms": "250"})
        assert request.deadline_seconds == pytest.approx(0.25)

    @pytest.mark.parametrize("raw", ["abc", "0", "-5"])
    def test_bad_deadline_raises_bad_request(self, raw):
        with pytest.raises(BadRequest):
            make_request(headers={"x-deadline-ms": raw}).deadline_seconds

    def test_wants_close_reads_connection_header(self):
        assert not make_request().wants_close
        assert make_request(headers={"connection": "Close"}).wants_close


class TestCorrelationHeaders:
    def test_request_and_trace_ids_default_to_none(self):
        request = make_request()
        assert request.request_id is None
        assert request.trace_id is None

    def test_ids_pass_through_when_clean(self):
        request = make_request(
            headers={"x-request-id": "req-42.a_b", "x-trace-id": "trace7"}
        )
        assert request.request_id == "req-42.a_b"
        assert request.trace_id == "trace7"

    def test_hostile_characters_are_stripped(self):
        # Header values end up in logs and response headers: no CR/LF or
        # exotic bytes may survive sanitization.
        request = make_request(
            headers={"x-request-id": "evil\r\nSet-Cookie: x=1", "x-trace-id": "  t 1  "}
        )
        assert "\r" not in request.request_id
        assert "\n" not in request.request_id
        assert request.request_id == "evilSet-Cookiex1"
        assert request.trace_id == "t1"

    def test_overlong_ids_are_clamped(self):
        request = make_request(headers={"x-request-id": "a" * 500})
        assert len(request.request_id) == 64

    def test_all_garbage_id_becomes_none(self):
        assert make_request(headers={"x-request-id": "///"}).request_id is None

    def test_minted_ids_are_unique_and_clean(self):
        first, second = mint_request_id(), mint_request_id()
        assert first != second
        assert all(ch.isalnum() for ch in first)


class TestWithHeader:
    def test_injects_after_the_status_line(self):
        raw = with_header(render_response(200, b"{}"), "X-Request-Id", "r1")
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"
        assert lines[1] == b"X-Request-Id: r1"
        assert body == b"{}"

    def test_body_and_content_length_are_untouched(self):
        original = json_response(200, {"a": 1})
        stamped = with_header(original, "X-Request-Id", "r2")
        assert stamped.partition(b"\r\n\r\n")[2] == original.partition(b"\r\n\r\n")[2]
        assert b"Content-Length: " in stamped

    def test_headerless_bytes_pass_through(self):
        assert with_header(b"garbage", "X", "y") == b"garbage"


class TestResponses:
    def test_render_response_shape(self):
        raw = render_response(200, b'{"a": 1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 8" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"a": 1}'

    def test_close_flag_sets_connection_close(self):
        assert b"Connection: close" in render_response(200, b"", close=True)

    def test_json_response_serializes_deterministically(self):
        raw = json_response(200, {"b": 2, "a": 1})
        body = raw.partition(b"\r\n\r\n")[2]
        assert body == b'{"a": 1, "b": 2}'

    def test_error_response_carries_retry_after_header(self):
        raw = error_response(Overloaded("full", retry_after=2.4))
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 2" in head
        payload = json.loads(body)
        assert payload["error"] == "overloaded"
        assert payload["retry_after_seconds"] == pytest.approx(2.4)

    def test_retry_after_never_rounds_to_zero(self):
        raw = error_response(QuotaExceeded("slow down", retry_after=0.05))
        assert b"Retry-After: 1\r\n" in raw

    @pytest.mark.parametrize(
        "error, status",
        [
            (BadRequest("x"), 400),
            (Overloaded("x", retry_after=1.0), 429),
            (QuotaExceeded("x", retry_after=1.0), 429),
            (ServerDraining("x"), 503),
            (DeadlineExceeded("x"), 504),
            (ServeError("x"), 500),
        ],
    )
    def test_status_codes(self, error, status):
        assert error.status == status
        assert error_response(error).startswith(f"HTTP/1.1 {status} ".encode())


class TestParseDims:
    def test_valid_dims_coerce_to_int_tuples(self):
        assert parse_dims([[4, 5], (6.0, 7)], 2) == ((4, 5), (6, 7))

    def test_rejects_non_list(self):
        with pytest.raises(BadRequest, match="list of"):
            parse_dims("nope", 2)

    def test_rejects_wrong_block_count(self):
        with pytest.raises(BadRequest, match="2 entries"):
            parse_dims([[4, 5]], 2)

    def test_rejects_malformed_pair(self):
        with pytest.raises(BadRequest, match=r"dims\[1\]"):
            parse_dims([[4, 5], [4]], 2)

    def test_rejects_non_integer_pair(self):
        with pytest.raises(BadRequest, match="integers"):
            parse_dims([[4, 5], ["a", "b"]], 2)

    def test_batch_validates_each_vector(self):
        batch = parse_dims_batch([[[4, 5], [6, 7]]], 2)
        assert batch == [((4, 5), (6, 7))]
        with pytest.raises(BadRequest, match="must not be empty"):
            parse_dims_batch([], 2)
        with pytest.raises(BadRequest, match=r"dims_batch\[0\]"):
            parse_dims_batch([[[4, 5]]], 2)


class TestCircuitResolver:
    def test_missing_circuit_field(self):
        with pytest.raises(BadRequest, match="'circuit' field"):
            CircuitResolver().resolve({})

    def test_wrong_circuit_type(self):
        with pytest.raises(BadRequest, match="benchmark name or a serialized"):
            CircuitResolver().resolve({"circuit": 42})

    def test_named_benchmark_loads_once(self):
        resolver = CircuitResolver()
        first = resolver.resolve({"circuit": "two_stage_opamp"})
        second = resolver.resolve({"circuit": "two_stage_opamp"})
        assert first is second
        assert first.name == "two_stage_opamp"

    def test_unknown_benchmark_lists_alternatives(self):
        with pytest.raises(BadRequest, match="unknown benchmark"):
            CircuitResolver().resolve({"circuit": "no_such_circuit"})

    def test_serialized_circuit_caches_by_digest(self, chain_payload):
        resolver = CircuitResolver()
        first = resolver.resolve({"circuit": chain_payload})
        second = resolver.resolve({"circuit": dict(chain_payload)})
        assert first is second
        assert first.num_blocks == build_chain_circuit().num_blocks

    def test_invalid_serialized_circuit(self):
        with pytest.raises(BadRequest, match="invalid serialized circuit"):
            CircuitResolver().resolve({"circuit": {"not": "a netlist"}})
