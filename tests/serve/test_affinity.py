"""Tests for shard-affine dispatch: routing, sub-batches, streaming.

The unit half exercises :class:`AffinityRouter` directly; the
integration half drives a real :class:`ServerHarness` through the
mixed-circuit ``/place_batch`` form and the chunked streaming path,
including an injected slow shard proving that a fast shard's chunk
reaches the client while the slow shard is still running.
"""

import time

import pytest

from repro.core.generator import GeneratorConfig
from repro.core.serialization import circuit_to_dict
from repro.parallel.sharding import ShardedStructureRegistry
from repro.serve.affinity import AffinityRouter
from repro.serve.harness import ServerHarness
from repro.serve.server import ServerConfig
from repro.service.engine import PlacementService
from repro.service.fingerprint import structure_key
from tests.conftest import build_chain_circuit
from tests.serve.conftest import CHAIN_DIMS, SMOKE, make_service

#: A second topology (3 blocks) so one batch spans two shards.
TRIO_DIMS = [[6, 5], [5, 6], [7, 5]]


def build_trio_circuit():
    return build_chain_circuit(num_blocks=3, name="trio")


class TestAffinityRouter:
    def test_inactive_without_registry(self):
        router = AffinityRouter(make_service(), workers=4)
        assert not router.active
        decision = router.route(build_chain_circuit())
        assert decision.slot is None
        assert not decision.pinned
        # The shard prefix is still computed (metrics and grouping use it).
        assert decision.shard == decision.key[:2]

    def test_inactive_with_one_worker(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        assert not AffinityRouter(service, workers=1).active
        assert not AffinityRouter(service, workers=None).active

    def test_disabled_router_never_pins(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        router = AffinityRouter(service, workers=4, enabled=False)
        assert not router.active
        assert router.route(build_chain_circuit()).slot is None

    def test_active_router_pins_to_the_shard_owner(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        router = AffinityRouter(service, workers=4)
        assert router.active
        circuit = build_chain_circuit()
        decision = router.route(circuit)
        assert decision.key == structure_key(circuit, SMOKE)
        assert decision.shard == decision.key[: registry.shard_chars]
        assert decision.slot == router.owner_map.owner_for(decision.shard)
        # Cached: the same circuit object yields the same decision.
        assert router.route(circuit) is decision

    def test_router_honours_registry_shard_chars(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry", shard_chars=3)
        service = PlacementService(registry, default_config=SMOKE)
        router = AffinityRouter(service, workers=2)
        assert router.route(build_chain_circuit()).shard == router.route(
            build_chain_circuit()
        ).key[:3]

    def test_subbatch_plan_groups_by_circuit(self):
        class Item:
            def __init__(self, circuit, shard):
                self.circuit = circuit
                self.shard = shard

        router = AffinityRouter(make_service(), workers=2)
        chain, trio = build_chain_circuit(), build_trio_circuit()
        items = [
            Item(chain, "aa"),
            Item(trio, "bb"),
            Item(chain, "aa"),
            Item(trio, "bb"),
        ]
        plan = router.subbatch_plan(items)
        assert plan == [("aa", [0, 2]), ("bb", [1, 3])]

    def test_record_tracks_hits_misses_and_shard_latency(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        router = AffinityRouter(service, workers=4)
        pinned = router.route(build_chain_circuit())
        router.record(pinned, 0.02)
        router.record(pinned, 0.04)
        stats = router.stats()
        assert stats["active"]
        assert stats["hits"] == 2
        assert stats["misses"] == 0
        shard_stats = stats["shards"][pinned.shard]
        assert shard_stats["slot"] == pinned.slot
        assert shard_stats["dispatches"] == 2
        assert shard_stats["mean_seconds"] == pytest.approx(0.03, abs=1e-6)
        assert shard_stats["max_seconds"] == pytest.approx(0.04, abs=1e-6)

    def test_unpinned_dispatches_count_as_misses(self):
        router = AffinityRouter(make_service(), workers=4)
        decision = router.route(build_chain_circuit())
        router.record(decision, 0.01)
        stats = router.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["shards"][decision.shard]["slot"] == -1


class TestMixedBatch:
    def test_queries_form_reports_per_shard_results(self, chain_payload):
        trio_payload = circuit_to_dict(build_trio_circuit())
        queries = [
            {"circuit": chain_payload, "dims": CHAIN_DIMS},
            {"circuit": trio_payload, "dims": TRIO_DIMS},
            {"circuit": chain_payload, "dims": CHAIN_DIMS},
        ]
        with ServerHarness(make_service()) as harness:
            response = harness.client().place_queries(queries)
        assert response.ok
        body = response.payload
        assert len(body["results"]) == 3
        # Input order survives shard grouping: queries 0 and 2 are the
        # 4-block chain, query 1 the 3-block trio.
        assert len(body["results"][0]["rects"]) == 4
        assert len(body["results"][1]["rects"]) == 3
        assert len(body["results"][2]["rects"]) == 4
        shards = body["shards"]
        assert len(shards) == 2
        assert {entry["circuit"] for entry in shards} == {"chain", "trio"}
        assert {entry["queries"] for entry in shards} == {2, 1}

    def test_single_circuit_form_keeps_its_shape(self, chain_payload):
        with ServerHarness(make_service()) as harness:
            response = harness.client().place_batch(
                chain_payload, [CHAIN_DIMS, CHAIN_DIMS]
            )
        assert response.ok
        assert set(response.payload) == {
            "results",
            "unique_queries",
            "duplicate_queries",
            "elapsed_seconds",
        }

    def test_both_forms_at_once_is_a_bad_request(self, chain_payload):
        with ServerHarness(make_service()) as harness:
            response = harness.client().request(
                "POST",
                "/place_batch",
                {
                    "circuit": chain_payload,
                    "dims_batch": [CHAIN_DIMS],
                    "queries": [{"circuit": chain_payload, "dims": CHAIN_DIMS}],
                },
            )
        assert response.status == 400
        assert "not both" in str(response.payload)

    def test_statusz_exposes_affinity_and_the_place_batcher(self, chain_payload):
        with ServerHarness(make_service()) as harness:
            client = harness.client()
            assert client.place(chain_payload, CHAIN_DIMS).ok
            status = client.statusz().payload
        affinity = status["affinity"]
        assert affinity["enabled"]
        assert not affinity["active"]  # no registry, no workers
        assert affinity["hits"] + affinity["misses"] >= 1
        assert affinity["shards"]
        assert "place" in status["batchers"]

    def test_affinity_disabled_by_config(self, chain_payload):
        config = ServerConfig(port=0, affinity=False)
        with ServerHarness(make_service(), config) as harness:
            client = harness.client()
            assert client.place(chain_payload, CHAIN_DIMS).ok
            status = client.statusz().payload
        assert not status["affinity"]["enabled"]
        assert not status["affinity"]["active"]


class TestStreaming:
    def test_stream_yields_one_chunk_per_shard_then_done(self, chain_payload):
        trio_payload = circuit_to_dict(build_trio_circuit())
        queries = [
            {"circuit": chain_payload, "dims": CHAIN_DIMS},
            {"circuit": trio_payload, "dims": TRIO_DIMS},
        ]
        with ServerHarness(make_service()) as harness:
            client = harness.client()
            chunks = client.place_batch_stream(queries)
            # The keep-alive connection survives the chunked response.
            assert client.healthz().ok
        assert len(chunks) == 3
        done = chunks[-1]
        assert done.done
        assert done.payload["shards"] == 2
        assert done.payload["failed"] == 0
        by_circuit = {chunk.payload["circuit"]: chunk for chunk in chunks[:-1]}
        assert set(by_circuit) == {"chain", "trio"}
        assert by_circuit["chain"].payload["indices"] == [0]
        assert by_circuit["trio"].payload["indices"] == [1]
        assert len(by_circuit["chain"].payload["results"]) == 1
        assert len(by_circuit["chain"].payload["results"][0]["rects"]) == 4

    def test_fast_shard_chunk_arrives_before_the_slow_shard_finishes(
        self, chain_payload
    ):
        trio_payload = circuit_to_dict(build_trio_circuit())
        queries = [
            {"circuit": chain_payload, "dims": CHAIN_DIMS},
            {"circuit": trio_payload, "dims": TRIO_DIMS},
        ]
        slow_seconds = 0.8
        with ServerHarness(make_service()) as harness:
            server = harness.server
            original = server._dispatch_shard_blocking

            def slow_on_trio(circuit, decision, dims_list):
                if circuit.name == "trio":
                    time.sleep(slow_seconds)
                return original(circuit, decision, dims_list)

            server._dispatch_shard_blocking = slow_on_trio
            arrivals = {}
            for chunk in harness.client().iter_place_batch_stream(queries):
                if not chunk.done:
                    arrivals[chunk.payload["circuit"]] = chunk.arrived_seconds
        # The fast shard's placements reached the client long before the
        # injected slow shard completed — the batch really streams instead
        # of barriering on its slowest shard.
        assert arrivals["chain"] < slow_seconds * 0.6
        assert arrivals["trio"] >= slow_seconds
        assert arrivals["trio"] - arrivals["chain"] > slow_seconds * 0.5

    def test_failing_shard_streams_an_error_chunk_only_for_its_items(
        self, chain_payload
    ):
        trio_payload = circuit_to_dict(build_trio_circuit())
        queries = [
            {"circuit": chain_payload, "dims": CHAIN_DIMS},
            {"circuit": trio_payload, "dims": TRIO_DIMS},
        ]
        with ServerHarness(make_service()) as harness:
            server = harness.server
            original = server._dispatch_shard_blocking

            def explode_on_trio(circuit, decision, dims_list):
                if circuit.name == "trio":
                    raise RuntimeError("shard down")
                return original(circuit, decision, dims_list)

            server._dispatch_shard_blocking = explode_on_trio
            client = harness.client()
            chunks = client.place_batch_stream(queries)
            follow_up = client.healthz()
        assert follow_up.ok
        by_circuit = {
            chunk.payload["circuit"]: chunk.payload
            for chunk in chunks
            if not chunk.done
        }
        assert "results" in by_circuit["chain"]
        assert "shard down" in by_circuit["trio"]["error"]
        assert "results" not in by_circuit["trio"]
        assert chunks[-1].payload["failed"] == 1

    def test_stream_works_for_the_single_circuit_form(self, chain_payload):
        with ServerHarness(make_service()) as harness:
            response_chunks = []
            client = harness.client()
            raw = client.request(
                "POST",
                "/place_batch",
                {
                    "circuit": chain_payload,
                    "dims_batch": [CHAIN_DIMS, CHAIN_DIMS],
                    "stream": True,
                },
            )
            # The generic request helper reads the whole chunked body as
            # text; every line must parse as one chunk.
            import json

            for line in str(raw.payload).strip().splitlines():
                response_chunks.append(json.loads(line))
        assert raw.status == 200
        assert response_chunks[-1]["done"]
        assert len(response_chunks[0]["results"]) == 2
