"""Tests for the wirelength estimators."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.cost.wirelength import (
    hpwl,
    mst_wirelength,
    net_terminal_positions,
    per_net_wirelength,
    star_wirelength,
    total_wirelength,
)
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect


def positions_lists():
    return st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=2, max_size=8
    )


class TestEstimators:
    def test_hpwl_two_points(self):
        assert hpwl([(0, 0), (3, 4)]) == 7.0

    def test_hpwl_single_point_is_zero(self):
        assert hpwl([(5, 5)]) == 0.0

    def test_star_two_points(self):
        assert star_wirelength([(0, 0), (4, 0)]) == 4.0

    def test_mst_chain(self):
        points = [(0, 0), (1, 0), (2, 0), (3, 0)]
        assert mst_wirelength(points) == 3.0

    def test_mst_less_or_equal_star(self):
        points = [(0, 0), (10, 0), (0, 10), (10, 10)]
        assert mst_wirelength(points) <= star_wirelength(points) + 1e-9

    @given(positions_lists())
    def test_hpwl_lower_bounds_mst(self, points):
        # For any point set the rectilinear MST is at least the half-perimeter.
        assert mst_wirelength(points) >= hpwl(points) - 1e-6

    @given(positions_lists())
    def test_estimators_nonnegative(self, points):
        assert hpwl(points) >= 0
        assert star_wirelength(points) >= 0
        assert mst_wirelength(points) >= 0

    @given(st.tuples(st.floats(0, 100), st.floats(0, 100)),
           st.tuples(st.floats(0, 100), st.floats(0, 100)))
    def test_two_pin_nets_agree_across_models(self, p, q):
        # HPWL == star == MST for <= 2 terminals, so the short-circuit fast
        # path must keep all three models identical there.
        expected = abs(p[0] - q[0]) + abs(p[1] - q[1])
        assert hpwl([p, q]) == pytest.approx(expected)
        assert star_wirelength([p, q]) == pytest.approx(expected)
        assert mst_wirelength([p, q]) == pytest.approx(expected)

    def test_mst_multi_terminal_matches_reference_prim(self):
        # The fused allocation-free Prim must agree with a naive rebuild.
        points = [(0.0, 0.0), (5.0, 1.0), (2.0, 7.0), (9.0, 3.0), (4.0, 4.0)]

        def naive(points):
            n = len(points)
            in_tree = {0}
            total = 0.0
            while len(in_tree) < n:
                best = min(
                    (
                        (abs(points[i][0] - points[j][0]) + abs(points[i][1] - points[j][1]), j)
                        for i in in_tree
                        for j in range(n)
                        if j not in in_tree
                    ),
                )
                total += best[0]
                in_tree.add(best[1])
            return total

        assert mst_wirelength(points) == pytest.approx(naive(points))


class TestCircuitWirelength:
    def _circuit(self):
        builder = CircuitBuilder("wl")
        builder.block("a", 2, 10, 2, 10, pins={"p": (0.0, 0.0)})
        builder.block("b", 2, 10, 2, 10, pins={"p": (0.0, 0.0)})
        builder.net("n1", ("a", "p"), ("b", "p"))
        return builder.build()

    def test_total_wirelength_matches_manual_hpwl(self):
        circuit = self._circuit()
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 5, 4, 4)}
        assert total_wirelength(circuit, rects) == pytest.approx(15.0)

    def test_net_weight_scales_contribution(self):
        circuit = self._circuit()
        circuit.nets[0] = circuit.nets[0].with_weight(2.0)
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 5, 4, 4)}
        assert total_wirelength(circuit, rects) == pytest.approx(30.0)

    def test_external_net_uses_io_position(self):
        builder = CircuitBuilder("ext")
        builder.block("a", 2, 10, 2, 10)
        builder.net("pad", ("a", "c"), external=True, io_position=(0.0, 0.0))
        circuit = builder.build()
        bounds = FloorplanBounds(20, 20)
        rects = {"a": Rect(10, 10, 2, 2)}
        positions = net_terminal_positions(circuit.nets[0], circuit, rects, bounds)
        assert (0.0, 0.0) in positions
        assert total_wirelength(circuit, rects, bounds) == pytest.approx(22.0)

    def test_external_net_without_bounds_contributes_nothing_extra(self):
        builder = CircuitBuilder("ext")
        builder.block("a", 2, 10, 2, 10)
        builder.net("pad", ("a", "c"), external=True)
        circuit = builder.build()
        rects = {"a": Rect(10, 10, 2, 2)}
        assert total_wirelength(circuit, rects) == 0.0

    def test_unknown_model_rejected(self):
        circuit = self._circuit()
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 5, 4, 4)}
        with pytest.raises(ValueError):
            total_wirelength(circuit, rects, model="steiner")

    def test_per_net_wirelength_keys(self):
        circuit = self._circuit()
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 5, 4, 4)}
        lengths = per_net_wirelength(circuit, rects)
        assert set(lengths) == {"n1"}
        assert lengths["n1"] == pytest.approx(15.0)
