"""Tests for the customizable placement cost function."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.cost.area import area_cost, aspect_ratio_penalty, dead_space
from repro.cost.cost_function import CostBreakdown, CostWeights, PlacementCostFunction
from repro.cost.penalties import out_of_bounds_penalty, overlap_penalty, symmetry_penalty
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect


def symmetric_circuit():
    builder = CircuitBuilder("sym")
    builder.block("a", 2, 10, 2, 10)
    builder.block("b", 2, 10, 2, 10)
    builder.simple_net("n1", ["a", "b"])
    builder.symmetry("pair", pairs=[("a", "b")])
    return builder.build()


class TestAreaComponents:
    def test_area_cost_is_bounding_box(self):
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(4, 4, 2, 2)}
        assert area_cost(rects) == 36.0

    def test_area_cost_empty(self):
        assert area_cost({}) == 0.0

    def test_aspect_ratio_penalty(self):
        square = {"a": Rect(0, 0, 4, 4)}
        elongated = {"a": Rect(0, 0, 16, 2)}
        assert aspect_ratio_penalty(square) == 0.0
        assert aspect_ratio_penalty(elongated) == pytest.approx(7.0)

    def test_dead_space(self):
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(4, 0, 2, 2)}
        assert dead_space(rects) == 4.0


class TestPenalties:
    def test_overlap_penalty(self):
        assert overlap_penalty({"a": Rect(0, 0, 4, 4), "b": Rect(2, 2, 4, 4)}) == 4.0
        assert overlap_penalty({"a": Rect(0, 0, 4, 4), "b": Rect(6, 6, 4, 4)}) == 0.0

    def test_out_of_bounds_penalty(self):
        bounds = FloorplanBounds(10, 10)
        assert out_of_bounds_penalty({"a": Rect(8, 0, 4, 4)}, bounds) == 8.0
        assert out_of_bounds_penalty({"a": Rect(0, 0, 4, 4)}, bounds) == 0.0

    def test_symmetry_penalty_uses_circuit_groups(self):
        circuit = symmetric_circuit()
        mirrored = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 0, 4, 4)}
        skewed = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 6, 4, 4)}
        assert symmetry_penalty(mirrored, circuit=circuit) == 0.0
        assert symmetry_penalty(skewed, circuit=circuit) > 0.0


class TestCostWeights:
    def test_with_legalization_sets_penalty_weights(self):
        weights = CostWeights().with_legalization(overlap=7.0, out_of_bounds=9.0)
        assert weights.overlap == 7.0
        assert weights.out_of_bounds == 9.0

    def test_with_legalization_preserves_every_other_field(self):
        """Built via dataclasses.replace: no field can be silently dropped."""
        import dataclasses

        base = CostWeights(
            wirelength=2.0,
            area=0.3,
            symmetry=4.0,
            aspect_ratio=1.5,
            routability=0.25,
        )
        legalized = base.with_legalization()
        for field in dataclasses.fields(CostWeights):
            if field.name in ("overlap", "out_of_bounds"):
                continue
            assert getattr(legalized, field.name) == getattr(base, field.name), field.name


class TestPlacementCostFunction:
    def test_default_weights_reproduce_wirelength_plus_area(self):
        circuit = symmetric_circuit()
        cost_fn = PlacementCostFunction(circuit)
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(8, 0, 4, 4)}
        breakdown = cost_fn.evaluate(rects)
        assert breakdown.total == pytest.approx(
            breakdown.wirelength + 0.05 * breakdown.area
        )
        assert breakdown.is_legal

    def test_legalization_weights(self):
        weights = CostWeights().with_legalization()
        circuit = symmetric_circuit()
        bounds = FloorplanBounds(30, 30)
        cost_fn = PlacementCostFunction(circuit, bounds, weights=weights)
        overlapping = {"a": Rect(0, 0, 4, 4), "b": Rect(2, 2, 4, 4)}
        breakdown = cost_fn.evaluate(overlapping)
        assert breakdown.overlap > 0
        assert not breakdown.is_legal
        assert breakdown.total > breakdown.wirelength

    def test_symmetry_weight_included(self):
        circuit = symmetric_circuit()
        weights = CostWeights(symmetry=10.0)
        cost_fn = PlacementCostFunction(circuit, weights=weights)
        skewed = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 6, 4, 4)}
        assert cost_fn.evaluate(skewed).symmetry > 0

    def test_evaluate_layout_orders_by_block_index(self):
        circuit = symmetric_circuit()
        cost_fn = PlacementCostFunction(circuit)
        by_rects = cost_fn.evaluate({"a": Rect(0, 0, 4, 4), "b": Rect(8, 0, 4, 4)})
        by_layout = cost_fn.evaluate_layout([(0, 0), (8, 0)], [(4, 4), (4, 4)])
        assert by_rects.total == pytest.approx(by_layout.total)

    def test_evaluate_layout_length_mismatch(self):
        circuit = symmetric_circuit()
        cost_fn = PlacementCostFunction(circuit)
        with pytest.raises(ValueError):
            cost_fn.evaluate_layout([(0, 0)], [(4, 4), (4, 4)])

    def test_breakdown_as_dict(self):
        breakdown = CostBreakdown(total=5.0, wirelength=4.0, area=20.0)
        as_dict = breakdown.as_dict()
        assert as_dict["total"] == 5.0
        assert as_dict["area"] == 20.0
