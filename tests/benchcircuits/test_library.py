"""Tests for the Table 1 benchmark circuit library."""

import pytest

from repro.benchcircuits.library import (
    TABLE1,
    ALIASES,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
)
from repro.circuit.validation import validate_circuit


class TestTable1Statistics:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_counts_match_paper(self, name):
        circuit = get_benchmark(name)
        assert circuit.summary() == TABLE1[name]

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_circuits_validate(self, name):
        validate_circuit(get_benchmark(name))

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_every_block_has_positive_dimension_range(self, name):
        circuit = get_benchmark(name)
        for block in circuit.blocks:
            assert block.min_w >= 1 and block.min_h >= 1
            assert block.max_w > block.min_w or block.max_h > block.min_h

    def test_benchmark_names_order(self):
        assert benchmark_names()[0] == "circ01"
        assert benchmark_names()[-1] == "benchmark24"
        assert len(benchmark_names()) == 9

    def test_all_benchmarks_builds_everything(self):
        circuits = all_benchmarks()
        assert set(circuits) == set(TABLE1)

    def test_aliases(self):
        assert get_benchmark("TSO").name == "two_stage_opamp"
        assert get_benchmark("tso-cascode").name == "tso_cascode"
        for alias in ALIASES:
            assert get_benchmark(alias) is not None

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("circ99")


class TestCircuitContent:
    def test_opamp_has_symmetry_groups(self):
        circuit = get_benchmark("two_stage_opamp")
        assert circuit.symmetry_groups

    def test_mixer_symmetry_pairs(self):
        circuit = get_benchmark("mixer")
        pairs = [pair for group in circuit.symmetry_groups for pair in group.pairs]
        assert ("lo_sw1", "lo_sw2") in pairs

    def test_opamp_compensation_net_present(self):
        # The synthesis performance model couples parasitics through net "n2".
        circuit = get_benchmark("two_stage_opamp")
        assert circuit.net("n2").num_terminals >= 3

    def test_largest_circuit_is_within_paper_target(self):
        # The method targets circuits of up to ~25 modules.
        assert max(c.num_blocks for c in all_benchmarks().values()) <= 25

    def test_external_nets_have_io_positions(self):
        circuit = get_benchmark("benchmark24")
        for net in circuit.nets:
            assert net.external
            fx, fy = net.io_position
            assert 0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0

    def test_connectivity_graph_of_cascode_is_meaningful(self):
        circuit = get_benchmark("tso_cascode")
        graph = circuit.connectivity_graph()
        assert graph.number_of_edges() >= 10
