"""Tests for overlap detection and the spatial grid."""

import random

from hypothesis import given, strategies as st

from repro.geometry.overlap import (
    GRID_PAIRWISE_CUTOFF,
    SpatialGrid,
    any_overlap,
    overlap_pairs,
    rect_overlaps_any,
    total_overlap_area,
)
from repro.geometry.rect import Rect


def _pairwise_overlap_area(layout):
    """Reference O(n^2) scan (the small-n production path, inlined)."""
    total = 0
    for i in range(len(layout)):
        for j in range(i + 1, len(layout)):
            inter = layout[i].intersection(layout[j])
            if inter is not None:
                total += inter.area
    return total


def rects(max_coord=40, max_dim=15):
    return st.builds(
        Rect,
        x=st.integers(0, max_coord),
        y=st.integers(0, max_coord),
        w=st.integers(1, max_dim),
        h=st.integers(1, max_dim),
    )


class TestOverlapFunctions:
    def test_no_overlap(self):
        layout = [Rect(0, 0, 2, 2), Rect(3, 0, 2, 2), Rect(0, 3, 2, 2)]
        assert not any_overlap(layout)
        assert overlap_pairs(layout) == []
        assert total_overlap_area(layout) == 0

    def test_single_overlap(self):
        layout = [Rect(0, 0, 4, 4), Rect(2, 2, 4, 4)]
        assert any_overlap(layout)
        assert overlap_pairs(layout) == [(0, 1)]
        assert total_overlap_area(layout) == 4

    def test_rect_overlaps_any(self):
        others = [Rect(0, 0, 2, 2), Rect(10, 10, 2, 2)]
        assert rect_overlaps_any(Rect(1, 1, 2, 2), others)
        assert not rect_overlaps_any(Rect(5, 5, 2, 2), others)

    @given(st.lists(rects(), min_size=2, max_size=8))
    def test_total_overlap_consistent_with_any_overlap(self, layout):
        assert (total_overlap_area(layout) > 0) == any_overlap(layout)

    @given(st.lists(rects(), min_size=GRID_PAIRWISE_CUTOFF + 1, max_size=GRID_PAIRWISE_CUTOFF + 12))
    def test_grid_path_equals_pairwise_scan(self, layout):
        """Above the cutoff the spatial grid must reproduce the exact area."""
        assert total_overlap_area(layout) == _pairwise_overlap_area(layout)

    def test_grid_path_on_large_dense_layout(self):
        rng = random.Random(0)
        layout = [
            Rect(rng.randint(0, 80), rng.randint(0, 80), rng.randint(1, 20), rng.randint(1, 20))
            for _ in range(120)
        ]
        assert len(layout) > GRID_PAIRWISE_CUTOFF
        assert total_overlap_area(layout) == _pairwise_overlap_area(layout)

    def test_grid_path_handles_zero_area_rects(self):
        layout = [Rect(i, i, 0, 5) for i in range(GRID_PAIRWISE_CUTOFF + 2)]
        layout.append(Rect(0, 0, 10, 10))
        assert total_overlap_area(layout) == 0


class TestSpatialGrid:
    def test_insert_and_query(self):
        grid = SpatialGrid(cell_size=8)
        grid.insert(0, Rect(0, 0, 4, 4))
        grid.insert(1, Rect(20, 20, 4, 4))
        assert grid.query(Rect(2, 2, 4, 4)) == [0]
        assert grid.query(Rect(50, 50, 2, 2)) == []
        assert len(grid) == 2
        assert 0 in grid and 5 not in grid

    def test_exclude_key(self):
        grid = SpatialGrid()
        grid.insert(0, Rect(0, 0, 4, 4))
        assert grid.query(Rect(0, 0, 2, 2), exclude=0) == []

    def test_reinsert_replaces(self):
        grid = SpatialGrid()
        grid.insert(0, Rect(0, 0, 4, 4))
        grid.insert(0, Rect(30, 30, 4, 4))
        assert grid.query(Rect(0, 0, 4, 4)) == []
        assert grid.query(Rect(30, 30, 2, 2)) == [0]

    def test_remove(self):
        grid = SpatialGrid()
        grid.insert(0, Rect(0, 0, 4, 4))
        grid.remove(0)
        assert grid.query(Rect(0, 0, 4, 4)) == []
        grid.remove(0)  # removing again is a no-op

    @given(st.lists(rects(), min_size=1, max_size=12), rects())
    def test_grid_matches_bruteforce(self, layout, probe):
        grid = SpatialGrid(cell_size=7)
        for key, rect in enumerate(layout):
            grid.insert(key, rect)
        expected = {key for key, rect in enumerate(layout) if rect.intersects(probe)}
        assert set(grid.query(probe)) == expected
