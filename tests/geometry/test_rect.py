"""Tests for integer rectangles."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.rect import Point, Rect, bounding_box_of


def rects(max_coord=50, max_dim=20):
    return st.builds(
        Rect,
        x=st.integers(0, max_coord),
        y=st.integers(0, max_coord),
        w=st.integers(1, max_dim),
        h=st.integers(1, max_dim),
    )


class TestPoint:
    def test_translation(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(5, 6).as_tuple() == (5, 6)


class TestRectBasics:
    def test_edges_and_area(self):
        rect = Rect(2, 3, 4, 5)
        assert (rect.x2, rect.y2) == (6, 8)
        assert rect.area == 20
        assert rect.center == (4.0, 5.5)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_zero_size_is_empty(self):
        assert Rect(0, 0, 0, 5).is_empty()
        assert not Rect(0, 0, 1, 5).is_empty()

    def test_contains_point_half_open(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.contains_point(0, 0)
        assert rect.contains_point(3.9, 3.9)
        assert not rect.contains_point(4, 0)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 3, 3))
        assert not outer.contains_rect(Rect(8, 8, 3, 3))

    def test_translated_and_resized(self):
        rect = Rect(1, 1, 2, 2)
        assert rect.translated(2, 3) == Rect(3, 4, 2, 2)
        assert rect.resized(5, 6) == Rect(1, 1, 5, 6)

    def test_inflated(self):
        assert Rect(5, 5, 2, 2).inflated(1) == Rect(4, 4, 4, 4)

    def test_terminal_position(self):
        rect = Rect(10, 20, 4, 8)
        assert rect.terminal_position(0.5, 0.5) == (12.0, 24.0)
        assert rect.terminal_position(0.0, 1.0) == (10.0, 28.0)


class TestIntersection:
    def test_touching_rects_do_not_intersect(self):
        assert not Rect(0, 0, 4, 4).intersects(Rect(4, 0, 4, 4))

    def test_overlapping_rects(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(3, 3, 5, 5)
        assert a.intersects(b)
        assert a.intersection(b) == Rect(3, 3, 2, 2)

    def test_disjoint_intersection_is_none(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(5, 5, 2, 2)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 2, 2).union_bbox(Rect(5, 5, 2, 2)) == Rect(0, 0, 7, 7)

    @given(rects(), rects())
    def test_intersection_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert inter_ab == inter_ba

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None and not inter.is_empty():
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)


class TestBoundingBox:
    def test_single_rect(self):
        assert bounding_box_of([Rect(1, 2, 3, 4)]) == Rect(1, 2, 3, 4)

    def test_multiple_rects(self):
        bbox = bounding_box_of([Rect(0, 0, 2, 2), Rect(5, 7, 1, 1)])
        assert bbox == Rect(0, 0, 6, 8)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            bounding_box_of([])

    @given(st.lists(rects(), min_size=1, max_size=10))
    def test_bbox_contains_all(self, rect_list):
        bbox = bounding_box_of(rect_list)
        assert all(bbox.contains_rect(r) for r in rect_list)
