"""Tests for block orientations."""

import pytest

from repro.geometry.transform import Orientation, oriented_dims, oriented_pin_offset


class TestOrientedDims:
    def test_r0_keeps_dims(self):
        assert oriented_dims(4, 7) == (4, 7)
        assert oriented_dims(4, 7, Orientation.MX) == (4, 7)

    def test_rotations_swap_dims(self):
        assert oriented_dims(4, 7, Orientation.R90) == (7, 4)
        assert oriented_dims(4, 7, Orientation.R270) == (7, 4)
        assert oriented_dims(4, 7, Orientation.MX90) == (7, 4)

    def test_swaps_dimensions_property(self):
        swapping = [o for o in Orientation if o.swaps_dimensions]
        assert set(swapping) == {
            Orientation.R90,
            Orientation.R270,
            Orientation.MX90,
            Orientation.MY90,
        }


class TestOrientedPinOffset:
    def test_identity(self):
        assert oriented_pin_offset(0.2, 0.7) == (0.2, 0.7)

    def test_mirror_x_flips_vertical(self):
        assert oriented_pin_offset(0.2, 0.7, Orientation.MX) == (0.2, pytest.approx(0.3))

    def test_mirror_y_flips_horizontal(self):
        assert oriented_pin_offset(0.2, 0.7, Orientation.MY) == (pytest.approx(0.8), 0.7)

    def test_r180_flips_both(self):
        fx, fy = oriented_pin_offset(0.2, 0.7, Orientation.R180)
        assert (fx, fy) == (pytest.approx(0.8), pytest.approx(0.3))

    def test_offsets_stay_in_unit_square(self):
        for orientation in Orientation:
            fx, fy = oriented_pin_offset(0.25, 0.6, orientation)
            assert 0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0

    def test_double_mirror_is_identity(self):
        fx, fy = oriented_pin_offset(*oriented_pin_offset(0.3, 0.8, Orientation.MX), Orientation.MX)
        assert (fx, fy) == (pytest.approx(0.3), pytest.approx(0.8))
