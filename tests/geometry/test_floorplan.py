"""Tests for floorplan bounds and area measures."""

import pytest

from repro.geometry.floorplan import FloorplanBounds, bounding_box, dead_space_ratio, occupied_area
from repro.geometry.rect import Rect


class TestFloorplanBounds:
    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            FloorplanBounds(0, 5)

    def test_contains(self):
        bounds = FloorplanBounds(10, 10)
        assert bounds.contains(Rect(0, 0, 10, 10))
        assert not bounds.contains(Rect(5, 5, 6, 2))

    def test_area_and_rect(self):
        bounds = FloorplanBounds(8, 4)
        assert bounds.area == 32
        assert bounds.as_rect() == Rect(0, 0, 8, 4)

    def test_clamp_anchor(self):
        bounds = FloorplanBounds(10, 10)
        assert bounds.clamp_anchor(-2, 20, 3, 3) == (0, 7)
        assert bounds.clamp_anchor(4, 4, 3, 3) == (4, 4)

    def test_wrap_anchor_wraps_to_opposite_side(self):
        bounds = FloorplanBounds(10, 10)
        x, y = bounds.wrap_anchor(12, -1, 2, 2)
        assert 0 <= x <= 8 and 0 <= y <= 8
        # Wrapping is periodic in the allowed anchor span.
        assert bounds.wrap_anchor(12, 3, 2, 2) == bounds.wrap_anchor(12 % 8, 3, 2, 2)

    def test_for_blocks_fits_every_block(self):
        dims = [(10, 5), (8, 8), (3, 12)]
        bounds = FloorplanBounds.for_blocks(dims, whitespace_factor=1.5)
        assert bounds.width >= 10
        assert bounds.height >= 12
        assert bounds.area >= sum(w * h for w, h in dims)

    def test_for_blocks_rejects_low_whitespace(self):
        with pytest.raises(ValueError):
            FloorplanBounds.for_blocks([(4, 4)], whitespace_factor=0.5)

    def test_for_blocks_requires_blocks(self):
        with pytest.raises(ValueError):
            FloorplanBounds.for_blocks([])

    def test_aspect_ratio_controls_shape(self):
        dims = [(10, 10)] * 4
        wide = FloorplanBounds.for_blocks(dims, aspect_ratio=2.0)
        assert wide.width > wide.height


class TestAreaMeasures:
    def test_bounding_box(self):
        bbox = bounding_box([Rect(0, 0, 2, 2), Rect(4, 4, 2, 2)])
        assert bbox == Rect(0, 0, 6, 6)

    def test_occupied_area(self):
        assert occupied_area([Rect(0, 0, 2, 3), Rect(5, 5, 1, 1)]) == 7

    def test_dead_space_ratio(self):
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(2, 0, 2, 2)}
        assert dead_space_ratio(rects) == 0.0
        spread = {"a": Rect(0, 0, 2, 2), "b": Rect(6, 6, 2, 2)}
        assert dead_space_ratio(spread) > 0.5

    def test_dead_space_empty(self):
        assert dead_space_ratio({}) == 0.0
