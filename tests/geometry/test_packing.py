"""Tests for shelf packing."""

from hypothesis import given, strategies as st

from repro.geometry.packing import packing_extent, shelf_pack
from repro.geometry.rect import Rect


def dims_lists():
    return st.lists(
        st.tuples(st.integers(1, 15), st.integers(1, 15)), min_size=1, max_size=12
    )


class TestShelfPack:
    def test_empty(self):
        assert shelf_pack([]) == []

    def test_single_block_at_origin(self):
        assert shelf_pack([(5, 5)]) == [(0, 0)]

    def test_respects_max_width(self):
        dims = [(4, 4)] * 5
        anchors = shelf_pack(dims, max_width=10)
        assert all(x + 4 <= 10 for x, _ in anchors)

    def test_order_parameter_keeps_index_alignment(self):
        dims = [(4, 4), (6, 6), (2, 2)]
        anchors = shelf_pack(dims, max_width=20, order=[2, 0, 1])
        # The anchor list is still indexed like dims.
        assert len(anchors) == 3
        rects = [Rect(x, y, w, h) for (x, y), (w, h) in zip(anchors, dims)]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])

    def test_gap_adds_spacing(self):
        anchors = shelf_pack([(4, 4), (4, 4)], max_width=100, gap=2)
        assert anchors[1][0] - (anchors[0][0] + 4) == 2

    @given(dims_lists())
    def test_packing_never_overlaps(self, dims):
        anchors = shelf_pack(dims)
        rects = [Rect(x, y, w, h) for (x, y), (w, h) in zip(anchors, dims)]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])

    @given(dims_lists())
    def test_packing_respects_default_width(self, dims):
        anchors = shelf_pack(dims)
        width, height = packing_extent(dims, anchors)
        assert width > 0 and height > 0
        # Every block fits inside the reported extent.
        assert all(x + w <= width and y + h <= height for (x, y), (w, h) in zip(anchors, dims))


class TestPackingExtent:
    def test_extent_of_empty(self):
        assert packing_extent([], []) == (0, 0)

    def test_extent_values(self):
        dims = [(4, 4), (4, 4)]
        anchors = [(0, 0), (4, 0)]
        assert packing_extent(dims, anchors) == (8, 4)
