"""Tests for the unified, frozen Placement result."""

import pytest

from repro.api import Placement
from repro.cost.cost_function import CostBreakdown
from repro.geometry.rect import Rect


def breakdown(total=10.0):
    return CostBreakdown(total=total, wirelength=total, area=0.0)


def make_placement(**overrides):
    kwargs = dict(
        rects={"a": Rect(0, 0, 4, 4), "b": Rect(4, 0, 4, 4)},
        cost=breakdown(),
        placer="template",
        source="template",
        elapsed_seconds=0.01,
        metadata={"dims": ((4, 4), (4, 4)), "placement_index": 2},
    )
    kwargs.update(overrides)
    return Placement(**kwargs)


class TestImmutability:
    def test_rects_cannot_be_mutated(self):
        placement = make_placement()
        with pytest.raises(TypeError):
            placement.rects["a"] = Rect(1, 1, 2, 2)
        with pytest.raises(TypeError):
            del placement.rects["a"]
        # The mutating dict API is simply absent from the immutable view.
        assert not hasattr(placement.rects, "clear")

    def test_metadata_cannot_be_mutated(self):
        placement = make_placement()
        with pytest.raises(TypeError):
            placement.metadata["dims"] = ()

    def test_owns_copy_of_source_dict(self):
        source = {"a": Rect(0, 0, 4, 4)}
        placement = make_placement(rects=source)
        source["a"] = Rect(9, 9, 1, 1)
        source["b"] = Rect(0, 0, 1, 1)
        assert placement.rects["a"] == Rect(0, 0, 4, 4)
        assert set(placement.rects) == {"a"}

    def test_fields_are_frozen(self):
        placement = make_placement()
        with pytest.raises(AttributeError):
            placement.placer = "other"


class TestProperties:
    def test_total_cost(self):
        assert make_placement().total_cost == pytest.approx(10.0)

    def test_tier_predicates(self):
        assert make_placement(source="structure").from_structure
        assert make_placement(source="structure").used_stored_placement
        assert make_placement(source="nearest").used_stored_placement
        assert not make_placement(source="nearest").from_structure
        assert not make_placement(source="fallback").used_stored_placement
        assert not make_placement(source="template").used_stored_placement

    def test_metadata_accessors(self):
        placement = make_placement()
        assert placement.dims == ((4, 4), (4, 4))
        assert placement.placement_index == 2
        bare = make_placement(metadata={})
        assert bare.dims is None
        assert bare.placement_index is None

    def test_anchors_follow_rect_order(self):
        assert make_placement().anchors() == ((0, 0), (4, 0))

    def test_with_metadata_merges(self):
        placement = make_placement().with_metadata(from_memo=True)
        assert placement.metadata["from_memo"] is True
        assert placement.placement_index == 2

    def test_as_dict_is_plain_data(self):
        data = make_placement().as_dict()
        assert data["placer"] == "template"
        assert data["rects"]["a"] == (0, 0, 4, 4)
        assert data["metadata"] == {"placement_index": 2}


class TestBackendStateIsolation:
    """Regression: no engine may leak a mutable reference to its internals."""

    def test_template_fixed_anchors_survive_caller_mutation(self):
        from repro.api import make_placer
        from tests.conftest import build_chain_circuit

        circuit = build_chain_circuit(4)
        placer = make_placer({"kind": "template"}, circuit)
        dims = [(6, 6)] * 4
        first = placer.place(dims)
        # The old TemplateBackend returned the placer's dict by reference;
        # callers could (and one day would) mutate backend state through it.
        with pytest.raises(TypeError):
            first.rects["m0"] = Rect(99, 99, 1, 1)
        second = placer.place(dims)
        assert dict(second.rects) == dict(first.rects)

    def test_memoized_service_results_are_tamper_proof(self, tmp_path):
        from repro.api import make_placer
        from tests.conftest import build_chain_circuit

        circuit = build_chain_circuit(4)
        placer = make_placer(
            {"kind": "service", "registry": str(tmp_path / "reg"), "scale": "smoke"},
            circuit,
        )
        dims = [(6, 6)] * 4
        first = placer.place(dims)
        with pytest.raises(TypeError):
            del first.rects["m0"]
        # The memoized entry served to the next caller is unchanged.
        assert dict(placer.place(dims).rects) == dict(first.rects)
