"""The three legacy result types (and the old backend ABC) keep importing."""

import warnings

import pytest

from repro.api import Placement, Placer


def test_placement_result_shim():
    with pytest.warns(DeprecationWarning, match="PlacementResult"):
        from repro.baselines.base import PlacementResult
    assert PlacementResult is Placement
    with pytest.warns(DeprecationWarning):
        from repro.baselines import PlacementResult as package_alias
    assert package_alias is Placement


def test_legacy_keyword_construction_still_works():
    """Old kwarg-style result construction maps onto the unified type."""
    from repro.cost.cost_function import CostBreakdown
    from repro.geometry.rect import Rect

    with pytest.warns(DeprecationWarning):
        from repro.baselines.base import PlacementResult

    result = PlacementResult(
        rects={"a": Rect(0, 0, 2, 2)},
        cost=CostBreakdown(total=1.0, wirelength=1.0, area=0.0),
        placer="template",
        elapsed_seconds=0.5,
    )
    assert result.source == "template"  # defaults to the placer kind
    assert result.total_cost == 1.0
    assert result.elapsed_seconds == 0.5


def test_backend_placement_shim():
    with pytest.warns(DeprecationWarning, match="BackendPlacement"):
        from repro.synthesis.backends import BackendPlacement
    assert BackendPlacement is Placement
    with pytest.warns(DeprecationWarning):
        from repro.synthesis import BackendPlacement as package_alias
    assert package_alias is Placement


def test_instantiated_placement_shim():
    with pytest.warns(DeprecationWarning, match="InstantiatedPlacement"):
        from repro.core.instantiator import InstantiatedPlacement
    assert InstantiatedPlacement is Placement
    with pytest.warns(DeprecationWarning):
        from repro.core import InstantiatedPlacement as package_alias
    assert package_alias is Placement


def test_placement_backend_shim():
    with pytest.warns(DeprecationWarning, match="PlacementBackend"):
        from repro.synthesis.backends import PlacementBackend
    assert PlacementBackend is Placer


def test_legacy_backend_constructors_return_unified_engines(
    generated_chain_structure, tmp_path
):
    from repro.core.instantiator import PlacementInstantiator
    from repro.service.engine import PlacementService
    from repro.service.placer import ServicePlacer
    from repro.synthesis.backends import MPSBackend, ServiceBackend

    with pytest.warns(DeprecationWarning, match="MPSBackend"):
        backend = MPSBackend(generated_chain_structure)
    assert isinstance(backend, PlacementInstantiator)

    service = PlacementService()
    with pytest.warns(DeprecationWarning, match="ServiceBackend"):
        backend = ServiceBackend(service, generated_chain_structure.circuit)
    assert isinstance(backend, ServicePlacer)


def test_clean_imports_do_not_warn():
    """Importing the packages (not the legacy names) stays warning-free."""
    import importlib

    import repro
    import repro.baselines
    import repro.core
    import repro.synthesis

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for module in (repro, repro.baselines, repro.core, repro.synthesis):
            importlib.reload(module)
