"""Tests for the batch-first Placer protocol (place_batch defaults, stats)."""

import pytest

from repro.api import Placement, Placer, make_placer
from repro.core.instantiator import PlacementInstantiator
from tests.conftest import build_chain_circuit


@pytest.fixture
def circuit():
    return build_chain_circuit(4)


def queries(circuit, count=6):
    """A duplicate-heavy batch of dimension vectors."""
    base = [
        [((b.min_w + b.max_w) // 2, (b.min_h + b.max_h) // 2) for b in circuit.blocks],
        [(b.min_w, b.min_h) for b in circuit.blocks],
    ]
    return [base[i % len(base)] for i in range(count)]


class CountingPlacer(Placer):
    """A minimal protocol implementation relying on every default."""

    name = "counting"

    def __init__(self, circuit):
        self._inner = make_placer({"kind": "template"}, circuit)
        self.calls = 0

    def place(self, dims) -> Placement:
        self.calls += 1
        return self._inner.place(dims)


class TestDefaultBatch:
    def test_default_place_batch_equals_sequential_place(self, circuit):
        batch = queries(circuit)
        looped = CountingPlacer(circuit)
        sequential = CountingPlacer(circuit)
        batched = looped.place_batch(batch)
        one_by_one = [sequential.place(dims) for dims in batch]
        assert looped.calls == len(batch)
        for a, b in zip(batched, one_by_one):
            assert dict(a.rects) == dict(b.rects)
            assert a.total_cost == pytest.approx(b.total_cost)

    def test_default_stats_and_spec(self, circuit):
        placer = CountingPlacer(circuit)
        assert placer.stats() == {}
        assert placer.spec == {"kind": "counting"}


class TestNativeBatchPaths:
    def test_instantiator_batch_matches_sequential(self, generated_chain_structure):
        batch = queries(generated_chain_structure.circuit, count=8)
        batched = PlacementInstantiator(generated_chain_structure).place_batch(batch)
        sequential = [
            PlacementInstantiator(generated_chain_structure).place(dims) for dims in batch
        ]
        assert len(batched) == len(batch)
        for a, b in zip(batched, sequential):
            assert a.source == b.source
            assert dict(a.rects) == dict(b.rects)

    def test_service_batch_matches_sequential_and_dedups(self, circuit, tmp_path):
        spec = {"kind": "service", "registry": str(tmp_path / "reg"), "scale": "smoke"}
        batched_placer = make_placer(spec, circuit)
        sequential_placer = make_placer(spec, circuit)
        batch = queries(circuit, count=8)
        batched = batched_placer.place_batch(batch)
        sequential = [sequential_placer.place(dims) for dims in batch]
        for a, b in zip(batched, sequential):
            assert a.source == b.source
            assert dict(a.rects) == dict(b.rects)
        stats = batched_placer.stats()
        assert stats["queries"] == len(batch)
        # Only two unique vectors in the batch: the rest answered by dedup.
        assert stats["dedup_hits"] == len(batch) - 2

    def test_instantiator_tier_stats_accumulate(self, generated_chain_structure):
        placer = PlacementInstantiator(generated_chain_structure)
        batch = queries(generated_chain_structure.circuit, count=4)
        for dims in batch:
            placer.place(dims)
        stats = placer.stats()
        assert stats["queries"] == 4
        assert (
            stats["structure_hits"] + stats["nearest_hits"] + stats["fallback_hits"] == 4
        )
