"""Tests for the declarative placer registry (`make_placer` and friends)."""

import json

import pytest

from repro.api import Placement, Placer, available_placers, make_placer, register_placer
from repro.api.registry import normalize_spec
from tests.conftest import build_chain_circuit


@pytest.fixture
def circuit():
    return build_chain_circuit(4)


def mid_dims(circuit):
    return [((b.min_w + b.max_w) // 2, (b.min_h + b.max_h) // 2) for b in circuit.blocks]


class TestAvailable:
    def test_builtin_kinds_listed(self):
        kinds = available_placers()
        for kind in ("template", "random", "genetic", "annealing", "mps", "service"):
            assert kind in kinds


class TestSpecForms:
    def test_bare_kind_string(self, circuit):
        placer = make_placer("template", circuit)
        assert placer.name == "template"

    def test_json_string(self, circuit):
        placer = make_placer('{"kind": "annealing", "iterations": 50}', circuit)
        assert placer.name == "annealing"
        assert placer.spec == {"kind": "annealing", "iterations": 50}

    def test_invalid_json_rejected(self, circuit):
        with pytest.raises(ValueError, match="not valid JSON"):
            make_placer('{"kind": ', circuit)

    def test_missing_kind_rejected(self, circuit):
        with pytest.raises(ValueError, match="'kind'"):
            make_placer({"iterations": 10}, circuit)

    def test_non_mapping_rejected(self, circuit):
        with pytest.raises(ValueError, match="must be a mapping"):
            make_placer(42, circuit)


class TestErrors:
    def test_unknown_kind_lists_available(self, circuit):
        with pytest.raises(KeyError, match="no placement engine registered") as excinfo:
            make_placer({"kind": "quantum"}, circuit)
        assert "template" in str(excinfo.value)

    def test_unknown_option_lists_allowed(self, circuit):
        with pytest.raises(ValueError, match="invalid option") as excinfo:
            make_placer({"kind": "annealing", "iterationz": 10}, circuit)
        assert "iterations" in str(excinfo.value)


class TestRoundTrip:
    """spec -> placer -> spec is stable, and the spec rebuilds the placer."""

    @pytest.mark.parametrize(
        "spec",
        [
            {"kind": "template", "mode": "adaptive", "seed": 3},
            {"kind": "random", "seed": 1, "attempts": 10},
            {"kind": "genetic", "population": 8, "generations": 3, "seed": 2},
            {"kind": "annealing", "iterations": 30, "seed": 0},
        ],
    )
    def test_direct_engines_round_trip(self, circuit, spec):
        placer = make_placer(spec, circuit)
        assert placer.spec == normalize_spec(spec)
        rebuilt = make_placer(placer.spec, circuit)
        assert rebuilt.spec == placer.spec
        assert type(rebuilt) is type(placer)

    def test_structure_engines_round_trip(self, circuit, tmp_path):
        mps = make_placer({"kind": "mps", "scale": "smoke", "seed": 0}, circuit)
        assert make_placer(mps.spec, circuit).spec == mps.spec
        service = make_placer(
            {"kind": "service", "registry": str(tmp_path / "reg"), "cache": 4}, circuit
        )
        assert make_placer(service.spec, circuit).spec == service.spec

    def test_spec_is_json_serializable(self, circuit):
        placer = make_placer({"kind": "genetic", "population": 8, "generations": 3}, circuit)
        assert json.loads(json.dumps(placer.spec)) == placer.spec


class TestAllEngineFamiliesUnified:
    """Acceptance: every engine family builds via make_placer and returns Placement."""

    def test_all_four_families(self, circuit, tmp_path, generated_chain_structure):
        specs = [
            {"kind": "template"},
            {"kind": "random", "seed": 0},
            {"kind": "genetic", "population": 6, "generations": 2},
            {"kind": "annealing", "iterations": 30},
            {"kind": "mps", "structure": generated_chain_structure},
            {"kind": "service", "registry": str(tmp_path / "reg"), "scale": "smoke"},
        ]
        dims = mid_dims(circuit)
        for spec in specs:
            placer = make_placer(spec, circuit)
            assert isinstance(placer, Placer)
            placement = placer.place(dims)
            assert type(placement) is Placement
            assert set(placement.rects) == set(circuit.block_names())
            assert placement.total_cost > 0
            assert isinstance(placer.stats(), dict)

    def test_mps_structure_mismatch_rejected(self, generated_chain_structure):
        other = build_chain_circuit(5, name="other")
        with pytest.raises(ValueError, match="does not"):
            make_placer({"kind": "mps", "structure": generated_chain_structure}, other)

    def test_mps_spec_carries_cost_function(self, circuit, generated_chain_structure):
        from repro.cost.cost_function import CostWeights, PlacementCostFunction

        weights = CostWeights(wirelength=0.0, area=5.0)
        cost_fn = PlacementCostFunction(
            generated_chain_structure.circuit, generated_chain_structure.bounds, weights=weights
        )
        placer = make_placer(
            {"kind": "mps", "structure": generated_chain_structure, "cost_function": cost_fn},
            generated_chain_structure.circuit,
        )
        dims = mid_dims(generated_chain_structure.circuit)
        default = make_placer(
            {"kind": "mps", "structure": generated_chain_structure},
            generated_chain_structure.circuit,
        )
        assert placer.place(dims).total_cost != pytest.approx(
            default.place(dims).total_cost
        )

    def test_bounds_spec_entry_pins_the_canvas(self, circuit):
        from repro.geometry.floorplan import FloorplanBounds

        bounds = FloorplanBounds(500, 500)
        placer = make_placer({"kind": "template", "bounds": bounds}, circuit)
        assert placer.bounds is bounds

    def test_service_spec_adopts_structure(self, generated_chain_structure):
        placer = make_placer(
            {"kind": "service", "structure": generated_chain_structure, "scale": "smoke"},
            generated_chain_structure.circuit,
        )
        dims = mid_dims(generated_chain_structure.circuit)
        placer.place(dims)
        stats = placer.stats()
        # Served from the adopted structure: nothing was generated or loaded.
        assert stats["structures_generated"] == 0
        assert stats["structures_loaded"] == 0
        assert stats["cache_hits"] == 1


class TestCustomRegistration:
    def test_register_and_build(self, circuit):
        from repro.baselines.random_placer import RandomPlacer

        @register_placer("test-custom")
        def factory(circuit, bounds=None, *, seed=0):
            return RandomPlacer(circuit, bounds, seed=seed)

        try:
            placer = make_placer({"kind": "test-custom", "seed": 5}, circuit)
            assert placer.spec["kind"] == "test-custom"
            assert isinstance(placer.place(mid_dims(circuit)), Placement)
        finally:
            from repro.api import registry as registry_module

            registry_module._REGISTRY.pop("test-custom", None)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_placer("template", lambda circuit, bounds=None: None)
