"""Golden regression fixtures: fixed-seed end-to-end synthesis trajectories.

Each scenario runs the full layout-inclusive synthesis chain with a pinned
seed and compares its cost history, evaluation count, best objective and
chosen placement against a fixture checked into ``fixtures/``.  Any change
to the optimizer, the cost model, the placement engines or the batched
parallel path that moves a trajectory shows up here as a diff — on purpose.

Refresh after an *intentional* behavior change with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.instantiator import PlacementInstantiator
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig

FIXTURES = Path(__file__).parent / "fixtures"

#: Relative tolerance for floating-point trajectory comparison.  The
#: trajectories are deterministic pure-Python float math; the tolerance
#: only absorbs last-ulp libm differences across platforms.
REL = 1e-9


def _run_template_sequential():
    design = two_stage_opamp_design()
    loop = LayoutInclusiveSynthesis(
        design.sizing_model,
        design.performance_model,
        design.spec,
        {"kind": "template"},
        config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=10)),
        seed=11,
    )
    return loop.run()


def _run_template_batched():
    # The batched speculative-annealing path (workers=1 exercises the exact
    # batch semantics without pool overhead; any worker count is
    # bit-identical — see test_batched_loop.py).
    design = two_stage_opamp_design()
    loop = LayoutInclusiveSynthesis(
        design.sizing_model,
        design.performance_model,
        design.spec,
        {"kind": "template"},
        config=SynthesisConfig(
            optimizer=SizingOptimizerConfig(max_iterations=12), workers=1
        ),
        seed=11,
    )
    return loop.run()


def _run_mps_sequential(structure):
    design = two_stage_opamp_design()
    loop = LayoutInclusiveSynthesis(
        design.sizing_model,
        design.performance_model,
        design.spec,
        PlacementInstantiator(structure),
        config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=10)),
        seed=11,
    )
    return loop.run()


def _snapshot(result) -> dict:
    """The trajectory facts a fixture pins down."""
    return {
        "backend": result.backend,
        "evaluations": result.evaluations,
        "history": list(result.history),
        "best_objective": result.best.objective,
        "best_spec_penalty": result.best.spec_penalty,
        "best_rects": {
            name: [rect.x, rect.y, rect.w, rect.h]
            for name, rect in sorted(result.best.placement.rects.items())
        },
    }


def _check_against_fixture(name: str, result, update_golden: bool) -> None:
    snapshot = _snapshot(result)
    path = FIXTURES / f"{name}.json"
    if update_golden:
        FIXTURES.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    assert path.exists(), (
        f"golden fixture {path} missing; generate it with --update-golden"
    )
    golden = json.loads(path.read_text())
    assert snapshot["backend"] == golden["backend"]
    assert snapshot["evaluations"] == golden["evaluations"]
    assert snapshot["best_rects"] == golden["best_rects"]
    assert len(snapshot["history"]) == len(golden["history"]), (
        "trajectory length changed — the optimizer took a different path"
    )
    assert snapshot["history"] == pytest.approx(golden["history"], rel=REL)
    assert snapshot["best_objective"] == pytest.approx(golden["best_objective"], rel=REL)
    assert snapshot["best_spec_penalty"] == pytest.approx(
        golden["best_spec_penalty"], rel=REL, abs=1e-12
    )


def test_golden_template_sequential(update_golden):
    _check_against_fixture("template_sequential", _run_template_sequential(), update_golden)


def test_golden_template_batched(update_golden):
    _check_against_fixture("template_batched", _run_template_batched(), update_golden)


def test_golden_mps_sequential(update_golden, generated_opamp_structure):
    _check_against_fixture(
        "mps_sequential", _run_mps_sequential(generated_opamp_structure), update_golden
    )


# --------------------------------------------------------------------- #
# Tracing must be a pure observer: the same fixed-seed runs, executed
# with the observability layer fully enabled, must reproduce the same
# fixtures bit for bit (span/trace ids come from a counter, never an RNG).
# These always *compare* — the untraced tests above own fixture refresh.
# --------------------------------------------------------------------- #
def _run_traced(runner):
    from repro import obs

    obs.configure(enabled=True)
    try:
        result = runner()
        assert obs.spans_snapshot(), "tracing was enabled but recorded no spans"
        return result
    finally:
        obs.reset()


def test_golden_template_sequential_traced(update_golden):
    if update_golden:
        pytest.skip("fixtures refresh from the untraced runs")
    _check_against_fixture(
        "template_sequential", _run_traced(_run_template_sequential), False
    )


def test_golden_template_batched_traced(update_golden):
    if update_golden:
        pytest.skip("fixtures refresh from the untraced runs")
    _check_against_fixture("template_batched", _run_traced(_run_template_batched), False)


def test_golden_mps_sequential_traced(update_golden, generated_opamp_structure):
    if update_golden:
        pytest.skip("fixtures refresh from the untraced runs")
    _check_against_fixture(
        "mps_sequential",
        _run_traced(lambda: _run_mps_sequential(generated_opamp_structure)),
        False,
    )
