"""Tests for ASCII / SVG rendering and the text tables."""

from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.viz.ascii_art import render_ascii
from repro.viz.series import format_series_table, format_table
from repro.viz.svg import render_svg, save_svg


LAYOUT = {
    "dp": Rect(0, 0, 10, 8),
    "load": Rect(12, 0, 8, 8),
    "cc": Rect(0, 10, 14, 10),
}


class TestAscii:
    def test_empty_layout(self):
        assert render_ascii({}) == "(empty floorplan)"

    def test_labels_and_outline_present(self):
        art = render_ascii(LAYOUT, FloorplanBounds(30, 25))
        assert "dp" in art
        assert "cc" in art
        assert "+" in art and "|" in art and "-" in art

    def test_respects_max_width(self):
        art = render_ascii(LAYOUT, FloorplanBounds(300, 250), max_width=40, max_height=20)
        assert all(len(line) <= 40 for line in art.splitlines())

    def test_without_bounds_uses_bounding_box(self):
        art = render_ascii(LAYOUT)
        assert "dp" in art


class TestSvg:
    def test_svg_structure(self):
        svg = render_svg(LAYOUT, FloorplanBounds(30, 25))
        assert svg.startswith("<svg")
        assert svg.count("<rect") == len(LAYOUT) + 1  # blocks + canvas
        assert "dp" in svg and "</svg>" in svg

    def test_save_svg(self, tmp_path):
        path = save_svg(LAYOUT, tmp_path / "floorplan.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_empty_layout_svg(self):
        svg = render_svg({})
        assert svg.startswith("<svg")


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"circuit": "circ01", "placements": 57}, {"circuit": "benchmark24", "placements": 133}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("circuit")
        assert "57" in table and "133" in table
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_order(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b", "a"])
        assert table.splitlines()[0].startswith("b")

    def test_format_series_table(self):
        table = format_series_table(
            [1, 2, 3], {"placement0": [5.0, 6.0, 7.0], "mps": [5.0, 5.5, 6.0]}, x_label="width"
        )
        assert "width" in table
        assert "placement0" in table
        assert len(table.splitlines()) == 5
