"""Tests for the table/figure experiment harnesses (smoke scale)."""

import pytest

from repro.experiments.config import FULL, MEDIUM, SMOKE, ExperimentScale, get_scale
from repro.experiments.runner import SECTIONS, build_report, main
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.synthesis_compare import run_synthesis_comparison
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import run_table2
from repro.benchcircuits.library import get_benchmark


class TestScales:
    def test_scale_lookup(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale("MEDIUM") is MEDIUM
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_budgets_increase_with_scale(self):
        assert SMOKE.explorer_iterations < MEDIUM.explorer_iterations < FULL.explorer_iterations
        assert SMOKE.bdio_iterations < FULL.bdio_iterations

    def test_generator_config_grows_with_circuit_size(self):
        small = SMOKE.generator_config(get_benchmark("circ01"))
        large = SMOKE.generator_config(get_benchmark("benchmark24"))
        assert large.explorer.max_iterations >= small.explorer.max_iterations


class TestTable1:
    def test_every_row_matches_paper(self):
        rows = table1_rows()
        assert len(rows) == 9
        assert all(row["matches_paper"] for row in rows)


class TestTable2:
    def test_rows_for_selected_circuits(self):
        rows = run_table2(circuits=["circ01", "two_stage_opamp"], scale=SMOKE, seed=0)
        assert [row.circuit for row in rows] == ["circ01", "two_stage_opamp"]
        for row in rows:
            assert row.placements >= 1
            assert row.generation_seconds > 0
            # Instantiation stays in the millisecond range (paper's headline claim).
            assert row.instantiation_seconds < 0.05
            assert 0.0 <= row.coverage <= 1.0
            assert set(row.as_dict()) >= {"circuit", "generation_time", "placements", "instantiation"}


class TestFigure5:
    def test_structure_yields_different_floorplans(self):
        result = run_figure5(scale=SMOKE, seed=0)
        assert result.instantiation_a.used_stored_placement
        assert result.instantiation_b.used_stored_placement
        assert result.arrangements_differ
        assert result.structure_beats_or_matches_template
        assert result.ascii_a and result.ascii_template


class TestFigure6:
    def test_selected_cost_tracks_lower_envelope(self):
        result = run_figure6(scale=SMOKE, seed=0, sweep_points=8)
        assert len(result.sweep_values) == len(result.selected_costs)
        assert result.placement_curves
        assert result.envelope_gap >= 0.0
        assert result.tracks_lower_envelope
        # The structure's selected cost never exceeds every placement's cost
        # at any sweep point (it is at or below the worst feasible curve).
        for i, selected in enumerate(result.selected_costs):
            feasible = [
                curve[i]
                for curve in result.placement_curves.values()
                if curve[i] is not None
            ]
            if feasible:
                assert selected <= max(feasible) + 1e-6


class TestFigure7:
    def test_cascode_instantiation_is_legal_and_fast(self):
        result = run_figure7(scale=SMOKE, seed=0)
        assert result.num_blocks == 21
        assert result.placements >= 1
        assert result.is_legal
        assert result.instantiation_seconds < 0.1
        assert result.ascii_floorplan


class TestSynthesisComparison:
    def test_mps_and_template_much_faster_than_annealing(self):
        comparison = run_synthesis_comparison(scale=SMOKE, seed=0)
        rows = {row["backend"]: row for row in comparison.rows()}
        assert set(rows) == {"mps", "template", "annealing"}
        assert comparison.mps_faster_than_annealing
        assert rows["mps"]["placement_ms_per_eval"] < rows["annealing"]["placement_ms_per_eval"]

    def test_backend_subset(self):
        comparison = run_synthesis_comparison(scale=SMOKE, backends=["mps", "template"], seed=0)
        assert set(comparison.results) == {"mps", "template"}

    def test_backend_spec_dicts(self):
        """The experiment takes full make_placer spec dicts, not just names."""
        comparison = run_synthesis_comparison(
            scale=SMOKE,
            backends=["template", {"kind": "random", "seed": 1, "attempts": 20}],
            seed=0,
        )
        assert set(comparison.results) == {"template", "random"}
        assert comparison.results["random"].backend == "random"


class TestRunnerCLI:
    def test_list_flag_prints_sections(self, capsys):
        assert main(["--list"]) == 0
        assert capsys.readouterr().out.split() == list(SECTIONS)

    def test_only_flag_limits_report(self, capsys):
        assert main(["--only", "table1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" not in out
        assert "Synthesis" not in out

    def test_unknown_section_is_a_cli_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "bogus"])
        assert "available" in capsys.readouterr().err

    def test_build_report_preserves_section_order(self):
        report = build_report(SMOKE, only=["table1"], include_synthesis=False)
        assert "Table 1" in report
        with pytest.raises(KeyError):
            build_report(SMOKE, only=["not-a-section"])
