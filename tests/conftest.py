"""Shared fixtures for the test suite.

Structure generation is the expensive part of the library, so the fixtures
that need a generated multi-placement structure are session-scoped and use
the smoke-scale SA budgets.
"""

from __future__ import annotations

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.circuit.builder import CircuitBuilder
from repro.circuit.devices import DeviceType
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.cost.cost_function import PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds


def build_chain_circuit(num_blocks: int = 4, name: str = "chain") -> "Circuit":
    """A small chain-connected circuit used throughout the unit tests."""
    builder = CircuitBuilder(name)
    for i in range(num_blocks):
        builder.block(f"m{i}", 4, 12, 4, 12, device_type=DeviceType.GENERIC)
    for i in range(num_blocks - 1):
        builder.simple_net(f"n{i}", [f"m{i}", f"m{i + 1}"])
    return builder.build()


@pytest.fixture
def chain_circuit():
    """A fresh 4-block chain circuit."""
    return build_chain_circuit()


@pytest.fixture
def chain_bounds(chain_circuit):
    """A floorplan canvas sized for the chain circuit."""
    return FloorplanBounds.for_blocks(chain_circuit.max_dims(), whitespace_factor=2.0)


@pytest.fixture
def chain_cost_function(chain_circuit, chain_bounds):
    """The default wirelength+area cost function for the chain circuit."""
    return PlacementCostFunction(chain_circuit, chain_bounds)


@pytest.fixture(scope="session")
def generated_chain_structure():
    """A generated structure for the chain circuit (smoke budget, fixed seed)."""
    circuit = build_chain_circuit()
    generator = MultiPlacementGenerator(circuit, GeneratorConfig.smoke(seed=7))
    return generator.generate()


@pytest.fixture(scope="session")
def generated_opamp_structure():
    """A generated structure for the two-stage opamp benchmark (smoke budget)."""
    circuit = get_benchmark("two_stage_opamp")
    config = GeneratorConfig.smoke(seed=3)
    generator = MultiPlacementGenerator(circuit, config)
    return generator.generate()


@pytest.fixture
def opamp_circuit():
    """A fresh two-stage opamp benchmark circuit."""
    return get_benchmark("two_stage_opamp")
