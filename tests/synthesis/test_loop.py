"""Tests for the placement backends and the layout-inclusive synthesis loop."""

import pytest

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.template import TemplatePlacer
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.service.engine import PlacementService
from repro.service.registry import StructureRegistry
from repro.synthesis.backends import (
    AnnealingBackend,
    MPSBackend,
    ServiceBackend,
    TemplateBackend,
)
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizer, SizingOptimizerConfig
from repro.synthesis.sizing import DesignSpace, SizingVariable


@pytest.fixture(scope="module")
def opamp_setup():
    design = two_stage_opamp_design()
    generator = MultiPlacementGenerator(design.circuit, GeneratorConfig.smoke(seed=2))
    structure = generator.generate()
    return design, generator, structure


class TestBackends:
    def test_mps_backend_places_all_blocks(self, opamp_setup):
        design, generator, structure = opamp_setup
        backend = MPSBackend(structure, generator.cost_function)
        dims = design.sizing_model.dims_for(design.sizing_model.design_space.default_point())
        placement = backend.place(dims)
        assert set(placement.rects) == set(design.circuit.block_names())
        assert placement.elapsed_seconds < 0.5
        assert placement.source in ("structure", "nearest", "fallback")

    def test_template_backend(self, opamp_setup):
        design, generator, _ = opamp_setup
        backend = TemplateBackend(TemplatePlacer(design.circuit, generator.bounds, seed=0))
        dims = design.sizing_model.dims_for(design.sizing_model.design_space.default_point())
        placement = backend.place(dims)
        assert placement.source == "template"
        assert placement.cost.total > 0

    def test_service_backend_places_all_blocks(self, opamp_setup, tmp_path):
        design, _, structure = opamp_setup
        registry = StructureRegistry(tmp_path / "registry")
        registry.put(structure, GeneratorConfig.smoke(seed=2))
        service = PlacementService(registry, default_config=GeneratorConfig.smoke(seed=2))
        backend = ServiceBackend(service, design.circuit)
        dims = design.sizing_model.dims_for(design.sizing_model.design_space.default_point())
        placement = backend.place(dims)
        assert set(placement.rects) == set(design.circuit.block_names())
        assert placement.source in ("structure", "nearest", "fallback")
        assert service.stats.queries == 1
        assert backend.stats()["queries"] == 1

    def test_annealing_backend_slower_than_mps(self, opamp_setup):
        design, generator, structure = opamp_setup
        dims = design.sizing_model.dims_for(design.sizing_model.design_space.default_point())
        mps = MPSBackend(structure, generator.cost_function).place(dims)
        annealing_backend = AnnealingBackend(
            AnnealingPlacer(
                design.circuit,
                generator.bounds,
                config=AnnealingPlacerConfig(max_iterations=400),
                seed=0,
            )
        )
        annealed = annealing_backend.place(dims)
        assert annealed.elapsed_seconds > mps.elapsed_seconds


class TestSizingOptimizer:
    def test_minimizes_simple_objective(self):
        space = DesignSpace([SizingVariable("x", 0.0, 10.0, default=9.0)])
        optimizer = SizingOptimizer(
            space,
            objective=lambda point: (point["x"] - 2.0) ** 2,
            config=SizingOptimizerConfig(max_iterations=120),
            seed=0,
        )
        result = optimizer.run()
        assert abs(result.best_state["x"] - 2.0) < 1.0


class TestSynthesisLoop:
    def test_evaluate_produces_consistent_objective(self, opamp_setup):
        design, generator, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            MPSBackend(structure, generator.cost_function),
            seed=0,
        )
        point = design.sizing_model.design_space.default_point()
        evaluation = loop.evaluate(point)
        config = SynthesisConfig()
        expected = (
            config.spec_weight * evaluation.spec_penalty
            + config.layout_weight * evaluation.placement.cost.total
            + config.power_weight * evaluation.performance.power_mw
        )
        assert evaluation.objective == pytest.approx(expected)

    def test_run_tracks_best_and_placement_time(self, opamp_setup):
        design, generator, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            MPSBackend(structure, generator.cost_function),
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=15)),
            seed=0,
        )
        result = loop.run()
        assert result.evaluations >= 15
        assert result.best.objective <= min(result.history) + 1e-9
        assert 0.0 <= result.placement_fraction <= 1.0
        assert result.backend == "mps"

    def test_service_backed_run_reports_service_stats(self, opamp_setup, tmp_path):
        design, _, structure = opamp_setup
        registry = StructureRegistry(tmp_path / "registry")
        registry.put(structure, GeneratorConfig.smoke(seed=2))
        service = PlacementService(registry, default_config=GeneratorConfig.smoke(seed=2))
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            ServiceBackend(service, design.circuit),
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=10)),
            seed=0,
        )
        result = loop.run()
        assert result.backend == "service"
        assert result.service_stats is not None
        assert result.service_stats["queries"] == result.evaluations
        tier_total = (
            result.service_stats["structure_hits"]
            + result.service_stats["nearest_hits"]
            + result.service_stats["fallback_hits"]
        )
        assert tier_total == result.evaluations

    def test_mps_run_has_no_service_stats(self, opamp_setup):
        design, generator, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            MPSBackend(structure, generator.cost_function),
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=5)),
            seed=0,
        )
        assert loop.run().service_stats is None

    def test_best_improves_over_default_point(self, opamp_setup):
        design, generator, structure = opamp_setup
        backend = MPSBackend(structure, generator.cost_function)
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            backend,
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=25)),
            seed=1,
        )
        default_objective = loop.evaluate(
            design.sizing_model.design_space.default_point()
        ).objective
        result = loop.run()
        assert result.best.objective <= default_objective + 1e-9
