"""Tests for the unified placement engines and the layout-inclusive synthesis loop."""

import pytest

from repro.api import Placement, make_placer
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from repro.service.engine import PlacementService
from repro.service.placer import ServicePlacer
from repro.service.registry import StructureRegistry
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizer, SizingOptimizerConfig
from repro.synthesis.sizing import DesignSpace, SizingVariable


@pytest.fixture(scope="module")
def opamp_setup():
    design = two_stage_opamp_design()
    generator = MultiPlacementGenerator(design.circuit, GeneratorConfig.smoke(seed=2))
    structure = generator.generate()
    return design, generator, structure


def default_dims(design):
    return design.sizing_model.dims_for(design.sizing_model.design_space.default_point())


class TestBackends:
    def test_mps_backend_places_all_blocks(self, opamp_setup):
        design, generator, structure = opamp_setup
        backend = PlacementInstantiator(structure, generator.cost_function)
        placement = backend.place(default_dims(design))
        assert isinstance(placement, Placement)
        assert set(placement.rects) == set(design.circuit.block_names())
        assert placement.elapsed_seconds < 0.5
        assert placement.source in ("structure", "nearest", "fallback")
        assert placement.placer == "mps"

    def test_template_backend_via_spec(self, opamp_setup):
        design, generator, _ = opamp_setup
        backend = make_placer({"kind": "template"}, design.circuit, bounds=generator.bounds)
        placement = backend.place(default_dims(design))
        assert isinstance(placement, Placement)
        assert placement.source == "template"
        assert placement.cost.total > 0

    def test_service_backend_places_all_blocks(self, opamp_setup, tmp_path):
        design, _, structure = opamp_setup
        registry = StructureRegistry(tmp_path / "registry")
        registry.put(structure, GeneratorConfig.smoke(seed=2))
        service = PlacementService(registry, default_config=GeneratorConfig.smoke(seed=2))
        backend = ServicePlacer(service, design.circuit)
        placement = backend.place(default_dims(design))
        assert isinstance(placement, Placement)
        assert set(placement.rects) == set(design.circuit.block_names())
        assert placement.placer == "service"
        assert placement.source in ("structure", "nearest", "fallback")
        assert service.stats.queries == 1
        assert backend.stats()["queries"] == 1

    def test_annealing_backend_slower_than_mps(self, opamp_setup):
        design, generator, structure = opamp_setup
        dims = default_dims(design)
        mps = PlacementInstantiator(structure, generator.cost_function).place(dims)
        annealing = make_placer(
            {"kind": "annealing", "iterations": 400}, design.circuit, bounds=generator.bounds
        )
        annealed = annealing.place(dims)
        assert annealed.elapsed_seconds > mps.elapsed_seconds


class TestSizingOptimizer:
    def test_minimizes_simple_objective(self):
        space = DesignSpace([SizingVariable("x", 0.0, 10.0, default=9.0)])
        optimizer = SizingOptimizer(
            space,
            objective=lambda point: (point["x"] - 2.0) ** 2,
            config=SizingOptimizerConfig(max_iterations=120),
            seed=0,
        )
        result = optimizer.run()
        assert abs(result.best_state["x"] - 2.0) < 1.0


class TestSynthesisLoop:
    def test_evaluate_produces_consistent_objective(self, opamp_setup):
        design, generator, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            PlacementInstantiator(structure, generator.cost_function),
            seed=0,
        )
        point = design.sizing_model.design_space.default_point()
        evaluation = loop.evaluate(point)
        config = SynthesisConfig()
        expected = (
            config.spec_weight * evaluation.spec_penalty
            + config.layout_weight * evaluation.placement.cost.total
            + config.power_weight * evaluation.performance.power_mw
        )
        assert evaluation.objective == pytest.approx(expected)

    def test_run_tracks_best_and_placement_time(self, opamp_setup):
        design, generator, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            PlacementInstantiator(structure, generator.cost_function),
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=15)),
            seed=0,
        )
        result = loop.run()
        assert result.evaluations >= 15
        assert result.best.objective <= min(result.history) + 1e-9
        assert 0.0 <= result.placement_fraction <= 1.0
        assert result.backend == "mps"

    def test_annealing_backend_reports_incremental_eval_stats(self, opamp_setup):
        design, _, _ = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            {"kind": "annealing", "iterations": 40, "seed": 0},
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=4)),
            seed=0,
        )
        result = loop.run()
        assert result.backend == "annealing"
        # The inner loop priced its moves by delta; the counters flow from
        # the placer's stats() into the synthesis result.
        stats = result.incremental_eval_stats
        assert stats["delta_moves"] > 0
        assert stats["delta_commits"] + stats["delta_reverts"] == stats["delta_moves"]

    def test_genetic_backend_reports_vector_eval_stats(self, opamp_setup, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        design, _, _ = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            {"kind": "genetic", "population": 8, "generations": 3, "seed": 0},
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=3)),
            seed=0,
        )
        result = loop.run()
        assert result.backend == "genetic"
        # Populations scored in vectorized sweeps; the counters flow from
        # the placer's stats() into the synthesis result.
        stats = result.vector_eval_stats
        assert stats["batch_evals"] > 0
        assert stats["batch_candidates"] >= stats["batch_evals"] * 8
        assert "vector_fallbacks" not in stats

    def test_loop_accepts_spec_dict(self, opamp_setup):
        design, _, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            {"kind": "mps", "structure": structure},
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=5)),
            seed=0,
        )
        result = loop.run()
        assert result.backend == "mps"
        assert loop.backend.spec["kind"] == "mps"
        assert result.evaluations >= 5

    def test_service_backed_run_reports_service_stats(self, opamp_setup, tmp_path):
        design, _, structure = opamp_setup
        registry = StructureRegistry(tmp_path / "registry")
        registry.put(structure, GeneratorConfig.smoke(seed=2))
        service = PlacementService(registry, default_config=GeneratorConfig.smoke(seed=2))
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            ServicePlacer(service, design.circuit),
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=10)),
            seed=0,
        )
        result = loop.run()
        assert result.backend == "service"
        assert result.backend_stats is not None
        assert result.backend_stats["queries"] == result.evaluations
        tier_total = (
            result.backend_stats["structure_hits"]
            + result.backend_stats["nearest_hits"]
            + result.backend_stats["fallback_hits"]
        )
        assert tier_total == result.evaluations
        # Deprecated alias still answers.
        assert result.service_stats == result.backend_stats

    def test_mps_run_reports_tier_stats(self, opamp_setup):
        design, generator, structure = opamp_setup
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            PlacementInstantiator(structure, generator.cost_function),
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=5)),
            seed=0,
        )
        result = loop.run()
        # The uniform stats() hook now reports for *every* engine.
        assert result.backend_stats is not None
        assert result.backend_stats["queries"] == result.evaluations

    def test_best_improves_over_default_point(self, opamp_setup):
        design, generator, structure = opamp_setup
        backend = PlacementInstantiator(structure, generator.cost_function)
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            backend,
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=25)),
            seed=1,
        )
        default_objective = loop.evaluate(
            design.sizing_model.design_space.default_point()
        ).objective
        result = loop.run()
        assert result.best.objective <= default_objective + 1e-9
