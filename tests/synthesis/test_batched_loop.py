"""Tests for the batched (``workers > 0``) synthesis path."""

import pytest

from repro.parallel.placer import ParallelPlacer
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig


def run_loop(workers, max_iterations=10, seed=0, backend=None):
    design = two_stage_opamp_design()
    loop = LayoutInclusiveSynthesis(
        design.sizing_model,
        design.performance_model,
        design.spec,
        backend if backend is not None else {"kind": "template"},
        config=SynthesisConfig(
            optimizer=SizingOptimizerConfig(max_iterations=max_iterations),
            workers=workers,
        ),
        seed=seed,
    )
    return loop.run()


class TestBatchedSynthesis:
    def test_bit_identical_across_worker_counts(self):
        results = {workers: run_loop(workers) for workers in (1, 2, 4)}
        reference = results[1]
        for workers in (2, 4):
            result = results[workers]
            assert result.history == reference.history
            assert result.evaluations == reference.evaluations
            assert result.best.objective == reference.best.objective
            assert dict(result.best.placement.rects) == dict(
                reference.best.placement.rects
            )

    def test_stochastic_backend_bit_identical_across_worker_counts(self):
        # Regression: annealing carries RNG state across queries, so without
        # per-query reseeding the trajectory used to drift with sharding.
        backend_spec = {"kind": "annealing", "iterations": 40, "seed": 7}
        results = {
            workers: run_loop(workers, max_iterations=6, backend=dict(backend_spec))
            for workers in (1, 2, 4)
        }
        reference = results[1]
        assert reference.backend == "parallel"  # wrapped with reseed="per_query"
        for workers in (2, 4):
            assert results[workers].history == reference.history
            assert results[workers].best.objective == reference.best.objective

    def test_spec_backend_wrapped_in_parallel(self):
        result = run_loop(2)
        assert result.backend == "parallel"
        assert result.backend_stats["workers"] == 2

    def test_workers_one_does_not_wrap(self):
        result = run_loop(1)
        assert result.backend == "template"

    def test_hand_built_placer_never_wrapped(self):
        design = two_stage_opamp_design()
        backend = ParallelPlacer(design.circuit, {"kind": "template"}, workers=2)
        with backend:
            result = run_loop(3, backend=backend)
        assert result.backend == "parallel"

    def test_respects_iteration_budget_and_tracks_best(self):
        result = run_loop(2, max_iterations=9)
        # The initial evaluation plus at most max_iterations candidates.
        assert result.evaluations <= 9 + 1 + 1
        assert result.best.objective <= min(result.history) + 1e-9
        assert result.history[0] >= result.best.objective

    def test_different_seeds_diverge(self):
        a = run_loop(2, seed=0)
        b = run_loop(2, seed=1)
        assert a.history != b.history

    def test_sequential_path_untouched_by_default(self):
        sequential = run_loop(0)
        assert sequential.backend == "template"
        assert len(sequential.history) >= 1
