"""Tests for sizing variables, design spaces and generator bindings."""

import random

import pytest

from repro.modgen.mosfet import FoldedMosfetGenerator
from repro.synthesis.binding import BlockBinding, CircuitSizingModel
from repro.synthesis.sizing import DesignSpace, SizingVariable
from tests.conftest import build_chain_circuit


class TestSizingVariable:
    def test_defaults_to_midpoint(self):
        variable = SizingVariable("w", 10.0, 20.0)
        assert variable.default == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SizingVariable("w", 10.0, 5.0)
        with pytest.raises(ValueError):
            SizingVariable("w", 10.0, 20.0, default=50.0)
        with pytest.raises(ValueError):
            SizingVariable("", 0.0, 1.0)

    def test_clamp_and_sample(self):
        variable = SizingVariable("w", 10.0, 20.0)
        assert variable.clamp(5.0) == 10.0
        assert variable.clamp(25.0) == 20.0
        rng = random.Random(0)
        for _ in range(20):
            assert 10.0 <= variable.sample(rng) <= 20.0

    def test_log_scale_sampling_in_bounds(self):
        variable = SizingVariable("c", 1.0, 1000.0, log_scale=True)
        rng = random.Random(0)
        samples = [variable.sample(rng) for _ in range(50)]
        assert all(1.0 <= s <= 1000.0 for s in samples)


class TestDesignSpace:
    def _space(self):
        return DesignSpace(
            [SizingVariable("w", 10.0, 20.0), SizingVariable("l", 0.35, 1.0)]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([SizingVariable("w", 0, 1), SizingVariable("w", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([])

    def test_default_and_random_points(self):
        space = self._space()
        defaults = space.default_point()
        assert defaults == {"w": 15.0, "l": 0.675}
        point = space.random_point(random.Random(0))
        assert set(point) == {"w", "l"}
        assert space.clamp(point) == point

    def test_clamp_fills_missing_and_bounds(self):
        space = self._space()
        clamped = space.clamp({"w": 100.0})
        assert clamped["w"] == 20.0
        assert clamped["l"] == 0.675

    def test_clamp_unknown_variable_rejected(self):
        with pytest.raises(KeyError):
            self._space().clamp({"zz": 1.0})

    def test_perturb_stays_in_bounds(self):
        space = self._space()
        rng = random.Random(0)
        point = space.default_point()
        for _ in range(30):
            point = space.perturb(point, rng)
            assert 10.0 <= point["w"] <= 20.0
            assert 0.35 <= point["l"] <= 1.0


class TestCircuitSizingModel:
    def test_dims_follow_generator(self):
        circuit = build_chain_circuit(2)
        space = DesignSpace([SizingVariable("w0", 5.0, 60.0, default=20.0)])
        generator = FoldedMosfetGenerator()
        model = CircuitSizingModel(
            circuit,
            space,
            [BlockBinding("m0", generator, {"width": "w0", "length": 0.5, "fingers": 4.0})],
        )
        small = model.dims_for({"w0": 8.0})
        large = model.dims_for({"w0": 60.0})
        # Bound block m0 follows the generator (clamped to block bounds);
        # unbound block m1 stays at its minimum dimensions.
        assert small[1] == circuit.blocks[1].min_dims
        assert large[0][1] >= small[0][1]
        for (w, h), block in zip(large, circuit.blocks):
            assert block.admits(w, h)

    def test_unknown_block_rejected(self):
        circuit = build_chain_circuit(2)
        space = DesignSpace([SizingVariable("w0", 5.0, 60.0)])
        with pytest.raises(ValueError):
            CircuitSizingModel(
                circuit, space, [BlockBinding("zz", FoldedMosfetGenerator(), {})]
            )

    def test_unknown_sizing_variable_rejected(self):
        circuit = build_chain_circuit(2)
        space = DesignSpace([SizingVariable("w0", 5.0, 60.0)])
        with pytest.raises(KeyError):
            CircuitSizingModel(
                circuit,
                space,
                [BlockBinding("m0", FoldedMosfetGenerator(), {"width": "missing"})],
            )
