"""Tests for parasitic estimation and the opamp performance model."""

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.synthesis.parasitics import estimate_parasitics
from repro.synthesis.performance import PerformanceSpec, TwoStageOpampModel


def opamp_layout(spread: int):
    """A placed two-stage opamp whose blocks are ``spread`` apart."""
    circuit = get_benchmark("two_stage_opamp")
    rects = {}
    for i, block in enumerate(circuit.blocks):
        rects[block.name] = Rect(i * spread, 0, block.min_w, block.min_h)
    return circuit, rects


class TestParasitics:
    def test_larger_layout_has_more_capacitance(self):
        circuit, compact = opamp_layout(spread=10)
        _, spread_out = opamp_layout(spread=40)
        compact_est = estimate_parasitics(circuit, compact)
        spread_est = estimate_parasitics(circuit, spread_out)
        assert spread_est.total_capacitance_ff > compact_est.total_capacitance_ff
        assert spread_est.total_wirelength_um > compact_est.total_wirelength_um

    def test_per_net_lookup(self):
        circuit, rects = opamp_layout(spread=20)
        estimate = estimate_parasitics(circuit, rects)
        assert estimate.capacitance("n2") > 0
        assert estimate.resistance("n2") > 0
        assert estimate.capacitance("does_not_exist") == 0.0

    def test_external_nets_use_bounds(self):
        circuit, rects = opamp_layout(spread=20)
        without_bounds = estimate_parasitics(circuit, rects)
        with_bounds = estimate_parasitics(circuit, rects, FloorplanBounds(200, 200))
        assert with_bounds.total_wirelength_um > without_bounds.total_wirelength_um


class TestTwoStageOpampModel:
    def test_reasonable_nominal_performance(self):
        model = TwoStageOpampModel()
        report = model.evaluate({"w_dp": 40, "l_dp": 0.5, "w_cs": 60, "i_bias": 50, "c_c": 1000})
        assert 40.0 < report.gain_db < 120.0
        assert report.unity_gain_bandwidth_hz > 1e6
        assert 0.0 < report.phase_margin_deg < 90.0
        assert report.power_mw > 0

    def test_wiring_capacitance_degrades_bandwidth(self):
        circuit, compact = opamp_layout(spread=10)
        _, spread_out = opamp_layout(spread=60)
        model = TwoStageOpampModel()
        point = {"w_dp": 40, "l_dp": 0.5, "w_cs": 60, "i_bias": 50, "c_c": 600}
        fast = model.evaluate(point, estimate_parasitics(circuit, compact))
        slow = model.evaluate(point, estimate_parasitics(circuit, spread_out))
        assert slow.unity_gain_bandwidth_hz < fast.unity_gain_bandwidth_hz
        assert slow.wiring_capacitance_ff > fast.wiring_capacitance_ff

    def test_more_bias_current_more_power_and_slew(self):
        model = TwoStageOpampModel()
        low = model.evaluate({"i_bias": 20, "c_c": 1000})
        high = model.evaluate({"i_bias": 100, "c_c": 1000})
        assert high.power_mw > low.power_mw
        assert high.slew_rate_v_per_us > low.slew_rate_v_per_us

    def test_report_as_dict(self):
        report = TwoStageOpampModel().evaluate({})
        as_dict = report.as_dict()
        assert "gain_db" in as_dict and "power_mw" in as_dict


class TestPerformanceSpec:
    def test_penalty_zero_when_met(self):
        report = TwoStageOpampModel().evaluate(
            {"w_dp": 60, "l_dp": 0.5, "w_cs": 80, "i_bias": 80, "c_c": 800}
        )
        spec = PerformanceSpec(
            min_gain_db=40.0,
            min_ugbw_hz=1e6,
            min_phase_margin_deg=20.0,
            min_slew_rate_v_per_us=1.0,
            max_power_mw=10.0,
        )
        assert spec.penalty(report) == 0.0
        assert spec.is_met(report)

    def test_penalty_positive_when_violated(self):
        report = TwoStageOpampModel().evaluate({"i_bias": 10, "c_c": 2500})
        strict = PerformanceSpec(min_ugbw_hz=1e9)
        assert strict.penalty(report) > 0.0
        assert not strict.is_met(report)

    def test_penalty_scales_with_violation(self):
        report = TwoStageOpampModel().evaluate({"i_bias": 10, "c_c": 2500})
        mild = PerformanceSpec(min_ugbw_hz=1e8)
        harsh = PerformanceSpec(min_ugbw_hz=1e9)
        assert harsh.penalty(report) > mild.penalty(report)
