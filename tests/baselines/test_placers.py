"""Tests for the baseline placers (template, annealing, genetic, random)."""

import pytest

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.genetic import GeneticPlacer, GeneticPlacerConfig
from repro.baselines.random_placer import RandomPlacer
from repro.baselines.template import MODE_ADAPTIVE, MODE_FIXED, TemplatePlacer
from repro.geometry.floorplan import FloorplanBounds
from tests.conftest import build_chain_circuit


def mid_dims(circuit):
    return [((b.min_w + b.max_w) // 2, (b.min_h + b.max_h) // 2) for b in circuit.blocks]


def assert_legal(result, bounds):
    rects = list(result.rects.values())
    for i in range(len(rects)):
        assert bounds.contains(rects[i])
        for j in range(i + 1, len(rects)):
            assert not rects[i].intersects(rects[j])


@pytest.fixture
def circuit():
    return build_chain_circuit(5)


@pytest.fixture
def bounds(circuit):
    return FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=2.0)


class TestRandomPlacer:
    def test_produces_legal_layout(self, circuit, bounds):
        placer = RandomPlacer(circuit, bounds, seed=0)
        result = placer.place(mid_dims(circuit))
        assert_legal(result, bounds)
        assert result.placer == "random"
        assert result.total_cost > 0

    def test_clamps_out_of_bounds_dims(self, circuit, bounds):
        placer = RandomPlacer(circuit, bounds, seed=0)
        result = placer.place([(100, 100)] * circuit.num_blocks)
        for rect in result.rects.values():
            assert rect.w == 12 and rect.h == 12

    def test_wrong_dims_length_rejected(self, circuit, bounds):
        placer = RandomPlacer(circuit, bounds, seed=0)
        with pytest.raises(ValueError):
            placer.place([(5, 5)])


class TestTemplatePlacer:
    def test_fixed_mode_reuses_anchors(self, circuit, bounds):
        placer = TemplatePlacer(circuit, bounds, seed=0, mode=MODE_FIXED)
        small = placer.place([(4, 4)] * circuit.num_blocks)
        large = placer.place(mid_dims(circuit))
        anchors_small = [(r.x, r.y) for r in small.rects.values()]
        anchors_large = [(r.x, r.y) for r in large.rects.values()]
        assert anchors_small == anchors_large
        assert_legal(small, FloorplanBounds(10 ** 6, 10 ** 6))
        assert_legal(large, FloorplanBounds(10 ** 6, 10 ** 6))

    def test_adaptive_mode_repacks(self, circuit, bounds):
        placer = TemplatePlacer(circuit, bounds, seed=0, mode=MODE_ADAPTIVE)
        result = placer.place(mid_dims(circuit))
        assert_legal(result, FloorplanBounds(10 ** 6, 10 ** 6))

    def test_adaptive_never_overlaps_at_any_dims(self, circuit, bounds):
        placer = TemplatePlacer(circuit, bounds, seed=1, mode=MODE_ADAPTIVE)
        for dims in ([(4, 4)] * 5, [(12, 12)] * 5, [(4, 12), (12, 4), (8, 8), (6, 10), (10, 6)]):
            result = placer.place(dims)
            rects = list(result.rects.values())
            for i in range(len(rects)):
                for j in range(i + 1, len(rects)):
                    assert not rects[i].intersects(rects[j])

    def test_invalid_mode_rejected(self, circuit, bounds):
        with pytest.raises(ValueError):
            TemplatePlacer(circuit, bounds, mode="nope")

    def test_fixed_template_is_deterministic(self, circuit, bounds):
        a = TemplatePlacer(circuit, bounds, seed=3)
        b = TemplatePlacer(circuit, bounds, seed=3)
        dims = mid_dims(circuit)
        assert a.anchors_for(dims) == b.anchors_for(dims)


class TestAnnealingPlacer:
    def test_beats_random_placement(self, circuit, bounds):
        dims = mid_dims(circuit)
        random_result = RandomPlacer(circuit, bounds, seed=0).place(dims)
        annealed = AnnealingPlacer(
            circuit, bounds, config=AnnealingPlacerConfig(max_iterations=600), seed=0
        ).place(dims)
        assert annealed.total_cost <= random_result.total_cost
        assert_legal(annealed, bounds)

    def test_config_scaled(self):
        config = AnnealingPlacerConfig(max_iterations=1000)
        assert config.scaled(0.1).max_iterations == 100

    def test_result_reports_elapsed(self, circuit, bounds):
        result = AnnealingPlacer(
            circuit, bounds, config=AnnealingPlacerConfig(max_iterations=100), seed=0
        ).place(mid_dims(circuit))
        assert result.elapsed_seconds > 0


class TestGeneticPlacer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneticPlacerConfig(population_size=1)
        with pytest.raises(ValueError):
            GeneticPlacerConfig(population_size=4, elite_count=4)

    def test_produces_legal_layout_and_improves(self, circuit, bounds):
        dims = mid_dims(circuit)
        random_result = RandomPlacer(circuit, bounds, seed=0).place(dims)
        genetic = GeneticPlacer(
            circuit,
            bounds,
            config=GeneticPlacerConfig(population_size=12, generations=10),
            seed=0,
        ).place(dims)
        assert_legal(genetic, bounds)
        assert genetic.total_cost <= random_result.total_cost * 1.2

    def test_deterministic_with_seed(self, circuit, bounds):
        dims = mid_dims(circuit)
        config = GeneticPlacerConfig(population_size=8, generations=5)
        a = GeneticPlacer(circuit, bounds, config=config, seed=5).place(dims)
        b = GeneticPlacer(circuit, bounds, config=config, seed=5).place(dims)
        assert a.total_cost == pytest.approx(b.total_cost)
