"""Tests for placement instantiation (the online half of Figure 1.b)."""

import pytest

from repro.core.instantiator import (
    FALLBACK_TEMPLATE,
    PlacementInstantiator,
    SOURCE_FALLBACK,
    SOURCE_NEAREST,
    SOURCE_STRUCTURE,
)
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from repro.modgen.mosfet import FoldedMosfetGenerator
from tests.conftest import build_chain_circuit


def build_structure():
    circuit = build_chain_circuit(2)
    structure = MultiPlacementStructure(circuit, FloorplanBounds(60, 60))
    structure.add_placement(
        anchors=[(0, 0), (10, 0)],
        ranges=[
            DimensionRange(Interval(4, 8), Interval(4, 8)),
            DimensionRange(Interval(4, 8), Interval(4, 8)),
        ],
        average_cost=10.0,
        best_cost=9.0,
        best_dims=[(6, 6), (6, 6)],
    )
    structure.set_fallback([(0, 30), (25, 30)])
    return structure


class TestInstantiation:
    def test_covered_query_uses_structure(self):
        instantiator = PlacementInstantiator(build_structure())
        result = instantiator.instantiate([(5, 5), (6, 6)])
        assert result.source == SOURCE_STRUCTURE
        assert result.from_structure
        assert result.used_stored_placement
        assert result.placement_index == 0
        rects = list(result.rects.values())
        assert rects[0].anchor.as_tuple() == (0, 0)
        assert rects[1].anchor.as_tuple() == (10, 0)

    def test_uncovered_query_uses_nearest_stored(self):
        instantiator = PlacementInstantiator(build_structure())
        # Outside the stored box but the stored anchors remain legal.
        result = instantiator.instantiate([(10, 10), (10, 10)])
        assert result.source == SOURCE_NEAREST
        assert result.used_stored_placement
        assert not result.from_structure
        assert result.placement_index == 0

    def test_template_fallback_mode_skips_nearest(self):
        instantiator = PlacementInstantiator(build_structure(), fallback_mode=FALLBACK_TEMPLATE)
        result = instantiator.instantiate([(10, 10), (10, 10)])
        assert result.source == SOURCE_FALLBACK
        assert result.placement_index is None
        rects = list(result.rects.values())
        assert rects[0].anchor.as_tuple() == (0, 30)

    def test_fallback_used_when_stored_anchors_become_illegal(self):
        structure = build_structure()
        instantiator = PlacementInstantiator(structure)
        # Dimensions so large the stored anchors (10 apart) would overlap;
        # the fallback anchors (25 apart) must be used instead.
        result = instantiator.instantiate([(12, 12), (12, 12)])
        assert result.source == SOURCE_FALLBACK

    def test_dims_clamped_into_block_bounds(self):
        instantiator = PlacementInstantiator(build_structure())
        result = instantiator.instantiate([(1, 1), (100, 100)])
        assert result.dims[0] == (4, 4)
        assert result.dims[1] == (12, 12)

    def test_invalid_fallback_mode_rejected(self):
        with pytest.raises(ValueError):
            PlacementInstantiator(build_structure(), fallback_mode="nope")

    def test_cost_matches_rects(self):
        structure = build_structure()
        instantiator = PlacementInstantiator(structure)
        result = instantiator.instantiate([(5, 5), (6, 6)])
        from repro.cost.cost_function import PlacementCostFunction

        cost_fn = PlacementCostFunction(structure.circuit, structure.bounds)
        assert result.total_cost == pytest.approx(cost_fn.evaluate(dict(result.rects)).total)

    def test_missing_fallback_falls_back_to_packing(self):
        circuit = build_chain_circuit(2)
        structure = MultiPlacementStructure(circuit, FloorplanBounds(60, 60))
        instantiator = PlacementInstantiator(structure)
        result = instantiator.instantiate([(5, 5), (5, 5)])
        assert result.source == SOURCE_FALLBACK
        rects = list(result.rects.values())
        assert not rects[0].intersects(rects[1])

    def test_instantiate_from_params_uses_generators(self):
        structure = build_structure()
        instantiator = PlacementInstantiator(structure)
        generator = FoldedMosfetGenerator()
        result = instantiator.instantiate_from_params(
            {"m0": {"width": 20.0, "length": 0.5, "fingers": 4}},
            {"m0": generator},
        )
        expected = generator.footprint(width=20.0, length=0.5, fingers=4)
        clamped = structure.circuit.blocks[0].clamp_dims(*expected.dims)
        assert result.dims[0] == clamped
        # Block m1 has no generator: it keeps its minimum dimensions.
        assert result.dims[1] == structure.circuit.blocks[1].min_dims
