"""Tests for structure serialization."""

import pytest

from repro.circuit.block import Block
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    load_structure,
    save_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from repro.benchcircuits.library import get_benchmark


class TestCircuitRoundtrip:
    def test_roundtrip_preserves_statistics(self):
        circuit = get_benchmark("two_stage_opamp")
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        assert rebuilt.summary() == circuit.summary()
        assert rebuilt.block_names() == circuit.block_names()
        assert [n.name for n in rebuilt.nets] == [n.name for n in circuit.nets]
        assert len(rebuilt.symmetry_groups) == len(circuit.symmetry_groups)

    def test_roundtrip_preserves_pins_and_bounds(self):
        circuit = get_benchmark("two_stage_opamp")
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        original_block = circuit.block("dp")
        rebuilt_block = rebuilt.block("dp")
        assert set(rebuilt_block.pins) == set(original_block.pins)
        assert rebuilt_block.min_dims == original_block.min_dims
        assert rebuilt_block.max_dims == original_block.max_dims
        assert rebuilt_block.device_type == original_block.device_type


class TestStructureRoundtrip:
    def test_dict_roundtrip_preserves_queries(self, generated_chain_structure):
        structure = generated_chain_structure
        rebuilt = structure_from_dict(structure_to_dict(structure))
        assert rebuilt.num_placements == structure.num_placements
        assert rebuilt.fallback_anchors == structure.fallback_anchors
        circuit = structure.circuit
        # Every stored placement is found at its best dimensions in both.
        for placement in structure:
            if not placement.best_dims:
                continue
            dims = list(placement.best_dims)
            original = structure.query_candidates(dims)
            restored = rebuilt.query_candidates(dims)
            assert original == restored
        rebuilt.check_invariants()

    def test_file_roundtrip(self, generated_chain_structure, tmp_path):
        path = save_structure(generated_chain_structure, tmp_path / "structure.json")
        assert path.exists()
        loaded = load_structure(path)
        assert loaded.num_placements == generated_chain_structure.num_placements
        assert loaded.bounds.width == generated_chain_structure.bounds.width

    def test_unsupported_version_rejected(self, generated_chain_structure):
        data = structure_to_dict(generated_chain_structure)
        data["format_version"] = 999
        with pytest.raises(ValueError):
            structure_from_dict(data)

    def test_missing_version_rejected(self, generated_chain_structure):
        data = structure_to_dict(generated_chain_structure)
        del data["format_version"]
        with pytest.raises(ValueError):
            structure_from_dict(data)


class TestEdgeCaseRoundtrips:
    def build_minimal_structure(self):
        """A hand-built structure with no fallback anchors."""
        circuit = Circuit("edge")
        circuit.add_block(Block("m0", 4, 8, 4, 8, pins={}))
        circuit.add_block(Block("m1", 4, 8, 4, 8, pins={}))
        structure = MultiPlacementStructure(circuit, FloorplanBounds(40, 40))
        structure.add_placement(
            anchors=[(0, 0), (10, 0)],
            ranges=[
                DimensionRange(Interval(4, 8), Interval(4, 8)),
                DimensionRange(Interval(4, 8), Interval(4, 8)),
            ],
            average_cost=5.0,
            best_cost=5.0,
        )
        return structure

    def test_structure_without_fallback_anchors(self):
        structure = self.build_minimal_structure()
        assert structure.fallback_anchors is None
        rebuilt = structure_from_dict(structure_to_dict(structure))
        assert rebuilt.fallback_anchors is None
        assert rebuilt.num_placements == 1

    def test_blocks_with_empty_pin_dicts(self):
        structure = self.build_minimal_structure()
        rebuilt = structure_from_dict(structure_to_dict(structure))
        for name in ("m0", "m1"):
            # Only the auto-added center pin exists, before and after.
            assert set(rebuilt.circuit.block(name).pins) == {"c"}
            assert set(structure.circuit.block(name).pins) == {"c"}

    def test_net_with_non_default_io_position(self):
        circuit = (
            CircuitBuilder("io_edge")
            .block("m0", 4, 8, 4, 8)
            .net("out", ("m0", "c"), external=True, io_position=(1.0, 0.25))
            .build()
        )
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        net = rebuilt.net("out")
        assert net.external
        assert net.io_position == (1.0, 0.25)

    def test_empty_placement_list_roundtrip(self):
        circuit = Circuit("empty")
        circuit.add_block(Block("m0", 4, 8, 4, 8))
        structure = MultiPlacementStructure(circuit, FloorplanBounds(20, 20))
        rebuilt = structure_from_dict(structure_to_dict(structure))
        assert rebuilt.num_placements == 0
        assert rebuilt.query([(5, 5)]) is None


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, generated_chain_structure, tmp_path):
        save_structure(generated_chain_structure, tmp_path / "structure.json")
        assert [p.name for p in tmp_path.iterdir()] == ["structure.json"]

    def test_save_replaces_existing_file(self, generated_chain_structure, tmp_path):
        path = tmp_path / "structure.json"
        path.write_text("not json")
        save_structure(generated_chain_structure, path)
        loaded = load_structure(path)
        assert loaded.num_placements == generated_chain_structure.num_placements

    def test_failed_save_preserves_the_old_file(self, generated_chain_structure, tmp_path, monkeypatch):
        path = tmp_path / "structure.json"
        save_structure(generated_chain_structure, path)
        before = path.read_text()

        import repro.core.serialization as serialization

        def boom(structure):
            raise RuntimeError("serialization exploded")

        monkeypatch.setattr(serialization, "structure_to_dict", boom)
        with pytest.raises(RuntimeError):
            save_structure(generated_chain_structure, path)
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["structure.json"]
