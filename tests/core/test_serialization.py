"""Tests for structure serialization."""

import pytest

from repro.core.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    load_structure,
    save_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.benchcircuits.library import get_benchmark


class TestCircuitRoundtrip:
    def test_roundtrip_preserves_statistics(self):
        circuit = get_benchmark("two_stage_opamp")
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        assert rebuilt.summary() == circuit.summary()
        assert rebuilt.block_names() == circuit.block_names()
        assert [n.name for n in rebuilt.nets] == [n.name for n in circuit.nets]
        assert len(rebuilt.symmetry_groups) == len(circuit.symmetry_groups)

    def test_roundtrip_preserves_pins_and_bounds(self):
        circuit = get_benchmark("two_stage_opamp")
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        original_block = circuit.block("dp")
        rebuilt_block = rebuilt.block("dp")
        assert set(rebuilt_block.pins) == set(original_block.pins)
        assert rebuilt_block.min_dims == original_block.min_dims
        assert rebuilt_block.max_dims == original_block.max_dims
        assert rebuilt_block.device_type == original_block.device_type


class TestStructureRoundtrip:
    def test_dict_roundtrip_preserves_queries(self, generated_chain_structure):
        structure = generated_chain_structure
        rebuilt = structure_from_dict(structure_to_dict(structure))
        assert rebuilt.num_placements == structure.num_placements
        assert rebuilt.fallback_anchors == structure.fallback_anchors
        circuit = structure.circuit
        # Every stored placement is found at its best dimensions in both.
        for placement in structure:
            if not placement.best_dims:
                continue
            dims = list(placement.best_dims)
            original = structure.query_candidates(dims)
            restored = rebuilt.query_candidates(dims)
            assert original == restored
        rebuilt.check_invariants()

    def test_file_roundtrip(self, generated_chain_structure, tmp_path):
        path = save_structure(generated_chain_structure, tmp_path / "structure.json")
        assert path.exists()
        loaded = load_structure(path)
        assert loaded.num_placements == generated_chain_structure.num_placements
        assert loaded.bounds.width == generated_chain_structure.bounds.width

    def test_unsupported_version_rejected(self, generated_chain_structure):
        data = structure_to_dict(generated_chain_structure)
        data["format_version"] = 999
        with pytest.raises(ValueError):
            structure_from_dict(data)
