"""Tests for stored placements and dimension ranges (Equation 2)."""

import pytest

from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange, StoredPlacement


def make_placement(index=0, w=(4, 10), h=(4, 10), anchors=((0, 0), (12, 0)), avg=10.0, best=8.0):
    ranges = [
        DimensionRange(Interval(*w), Interval(*h)),
        DimensionRange(Interval(*w), Interval(*h)),
    ]
    return StoredPlacement(
        index=index,
        anchors=anchors,
        ranges=ranges,
        average_cost=avg,
        best_cost=best,
        best_dims=((w[0], h[0]), (w[0], h[0])),
    )


class TestDimensionRange:
    def test_contains_and_volume(self):
        rng = DimensionRange(Interval(4, 6), Interval(2, 3))
        assert rng.contains(5, 2)
        assert not rng.contains(7, 2)
        assert rng.volume == 6
        assert rng.as_tuple() == (4, 6, 2, 3)

    def test_overlaps_requires_both_axes(self):
        a = DimensionRange(Interval(0, 5), Interval(0, 5))
        b = DimensionRange(Interval(4, 8), Interval(4, 8))
        c = DimensionRange(Interval(4, 8), Interval(10, 12))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_from_tuple_roundtrip(self):
        rng = DimensionRange.from_tuple((1, 2, 3, 4))
        assert rng.width == Interval(1, 2)
        assert rng.height == Interval(3, 4)

    def test_replace(self):
        rng = DimensionRange(Interval(0, 5), Interval(0, 5))
        replaced = rng.replace(width=Interval(1, 2))
        assert replaced.width == Interval(1, 2)
        assert replaced.height == Interval(0, 5)


class TestStoredPlacement:
    def test_contains_dimension_vector(self):
        placement = make_placement()
        assert placement.contains([(5, 5), (6, 7)])
        assert not placement.contains([(5, 5), (11, 7)])
        assert not placement.contains([(5, 5)])

    def test_anchor_range_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StoredPlacement(
                index=0,
                anchors=((0, 0),),
                ranges=[
                    DimensionRange(Interval(0, 1), Interval(0, 1)),
                    DimensionRange(Interval(0, 1), Interval(0, 1)),
                ],
                average_cost=1.0,
                best_cost=1.0,
            )

    def test_best_cost_cannot_exceed_average(self):
        with pytest.raises(ValueError):
            make_placement(avg=5.0, best=6.0)

    def test_box_overlap_and_dimensions(self):
        a = make_placement(index=0, w=(0, 10), h=(0, 10))
        b = make_placement(index=1, w=(8, 15), h=(8, 15))
        c = make_placement(index=2, w=(20, 25), h=(0, 10))
        assert a.box_overlaps(b)
        assert not a.box_overlaps(c)
        overlaps = a.overlap_dimensions(b)
        assert len(overlaps) == 4  # two blocks x two axes
        assert a.overlap_dimensions(c) == []

    def test_volume(self):
        placement = make_placement(w=(4, 5), h=(4, 6))
        assert placement.volume == (2 * 3) ** 2

    def test_rects_at_dims(self):
        placement = make_placement(anchors=((0, 0), (12, 3)))
        rects = placement.rects([(4, 5), (6, 7)])
        assert rects[0].w == 4 and rects[0].h == 5
        assert rects[1].x == 12 and rects[1].y == 3

    def test_with_ranges_copies(self):
        placement = make_placement()
        new_ranges = [
            DimensionRange(Interval(4, 5), Interval(4, 5)),
            DimensionRange(Interval(4, 5), Interval(4, 5)),
        ]
        copy = placement.with_ranges(new_ranges, index=9)
        assert copy.index == 9
        assert copy.anchors == placement.anchors
        assert copy.ranges[0].width == Interval(4, 5)
        # The original is untouched.
        assert placement.ranges[0].width == Interval(4, 10)
