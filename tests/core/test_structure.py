"""Tests for the multi-placement structure (Equations 1, 4, 5)."""

import random

import pytest

from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from tests.conftest import build_chain_circuit


def ranges_for(circuit, w, h):
    return [DimensionRange(Interval(*w), Interval(*h)) for _ in circuit.blocks]


@pytest.fixture
def structure():
    circuit = build_chain_circuit(3)
    bounds = FloorplanBounds(60, 60)
    return MultiPlacementStructure(circuit, bounds)


class TestStorage:
    def test_empty_structure(self, structure):
        assert structure.num_placements == 0
        assert len(structure) == 0
        assert structure.query([(5, 5)] * 3) is None
        assert structure.marginal_coverage() == 0.0

    def test_add_and_query(self, structure):
        circuit = structure.circuit
        placement = structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 8), (4, 8)),
            average_cost=10.0,
            best_cost=9.0,
            best_dims=[(6, 6)] * 3,
        )
        assert structure.num_placements == 1
        assert structure.placement(placement.index) is placement
        assert structure.query([(5, 5), (6, 6), (7, 7)]) is placement
        assert structure.query([(5, 5), (6, 6), (12, 7)]) is None

    def test_query_candidates_intersection(self, structure):
        circuit = structure.circuit
        structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 6), (4, 6)),
            average_cost=10.0,
            best_cost=9.0,
        )
        structure.add_placement(
            anchors=[(0, 20), (15, 20), (30, 20)],
            ranges=ranges_for(circuit, (7, 10), (7, 10)),
            average_cost=12.0,
            best_cost=11.0,
        )
        assert structure.query_candidates([(5, 5)] * 3) == {0}
        assert structure.query_candidates([(8, 8)] * 3) == {1}
        assert structure.query_candidates([(5, 8)] * 3) == frozenset()

    def test_query_wrong_length_rejected(self, structure):
        with pytest.raises(ValueError):
            structure.query([(5, 5)])

    def test_duplicate_index_rejected(self, structure):
        circuit = structure.circuit
        structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 6), (4, 6)),
            average_cost=10.0,
            best_cost=9.0,
            index=5,
        )
        with pytest.raises(ValueError):
            structure.add_placement(
                anchors=[(0, 0), (15, 0), (30, 0)],
                ranges=ranges_for(circuit, (7, 9), (7, 9)),
                average_cost=10.0,
                best_cost=9.0,
                index=5,
            )

    def test_remove_placement_clears_rows(self, structure):
        circuit = structure.circuit
        placement = structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 8), (4, 8)),
            average_cost=10.0,
            best_cost=9.0,
        )
        structure.remove_placement(placement.index)
        assert structure.num_placements == 0
        assert structure.query([(5, 5)] * 3) is None
        with pytest.raises(KeyError):
            structure.placement(placement.index)

    def test_update_ranges_moves_coverage(self, structure):
        circuit = structure.circuit
        placement = structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 6), (4, 6)),
            average_cost=10.0,
            best_cost=9.0,
        )
        structure.update_ranges(placement.index, ranges_for(circuit, (8, 10), (8, 10)))
        assert structure.query([(5, 5)] * 3) is None
        assert structure.query([(9, 9)] * 3) is placement

    def test_multiple_candidates_prefers_lower_cost(self, structure):
        # Bypass overlap resolution deliberately to exercise the tie-break.
        circuit = structure.circuit
        structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 8), (4, 8)),
            average_cost=20.0,
            best_cost=18.0,
        )
        best = structure.add_placement(
            anchors=[(0, 20), (15, 20), (30, 20)],
            ranges=ranges_for(circuit, (4, 8), (4, 8)),
            average_cost=10.0,
            best_cost=9.0,
        )
        assert structure.query([(5, 5)] * 3) is best


class TestCoverageAndInvariants:
    def test_marginal_coverage_grows_with_placements(self, structure):
        circuit = structure.circuit
        assert structure.marginal_coverage() == 0.0
        structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 6), (4, 6)),
            average_cost=10.0,
            best_cost=9.0,
        )
        first = structure.marginal_coverage()
        structure.add_placement(
            anchors=[(0, 20), (15, 20), (30, 20)],
            ranges=ranges_for(circuit, (7, 12), (7, 12)),
            average_cost=10.0,
            best_cost=9.0,
        )
        assert structure.marginal_coverage() > first

    def test_volume_coverage_bounds(self, structure):
        circuit = structure.circuit
        rng = random.Random(0)
        assert structure.volume_coverage(rng, samples=50) == 0.0
        structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=[
                DimensionRange(
                    Interval(block.min_w, block.max_w), Interval(block.min_h, block.max_h)
                )
                for block in circuit.blocks
            ],
            average_cost=10.0,
            best_cost=9.0,
        )
        assert structure.volume_coverage(rng, samples=50) == 1.0

    def test_volume_coverage_requires_samples(self, structure):
        with pytest.raises(ValueError):
            structure.volume_coverage(random.Random(0), samples=0)

    def test_check_invariants_detects_equation5_violation(self, structure):
        circuit = structure.circuit
        structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 8), (4, 8)),
            average_cost=10.0,
            best_cost=9.0,
        )
        structure.add_placement(
            anchors=[(0, 20), (15, 20), (30, 20)],
            ranges=ranges_for(circuit, (6, 10), (6, 10)),
            average_cost=11.0,
            best_cost=9.0,
        )
        with pytest.raises(AssertionError):
            structure.check_invariants()

    def test_overlapping_placements_probe(self, structure):
        circuit = structure.circuit
        stored = structure.add_placement(
            anchors=[(0, 0), (15, 0), (30, 0)],
            ranges=ranges_for(circuit, (4, 8), (4, 8)),
            average_cost=10.0,
            best_cost=9.0,
        )
        hits = structure.overlapping_placements(ranges_for(circuit, (6, 9), (6, 9)))
        assert hits == [stored]
        assert structure.overlapping_placements(ranges_for(circuit, (9, 12), (9, 12))) == []


class TestFallback:
    def test_set_fallback_validates_length(self, structure):
        with pytest.raises(ValueError):
            structure.set_fallback([(0, 0)])

    def test_fallback_used_by_instantiate(self, structure):
        structure.set_fallback([(0, 0), (20, 0), (40, 0)])
        result = structure.instantiate([(5, 5), (5, 5), (5, 5)])
        assert result.source == "fallback"
        assert result.placement_index is None
        rect_list = list(result.rects.values())
        assert rect_list[1].x == 20
