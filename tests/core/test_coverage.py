"""Tests for the coverage metrics."""

import pytest

from repro.core.coverage import coverage, marginal_coverage, volume_coverage_estimate
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from tests.conftest import build_chain_circuit


@pytest.fixture
def half_covered_structure():
    circuit = build_chain_circuit(2)
    structure = MultiPlacementStructure(circuit, FloorplanBounds(60, 60))
    # Blocks span 4..12 (9 values); cover 4..8 (5 values) in every row.
    structure.add_placement(
        anchors=[(0, 0), (20, 0)],
        ranges=[
            DimensionRange(Interval(4, 8), Interval(4, 8)),
            DimensionRange(Interval(4, 8), Interval(4, 8)),
        ],
        average_cost=1.0,
        best_cost=1.0,
    )
    return structure


class TestCoverage:
    def test_marginal_value(self, half_covered_structure):
        assert marginal_coverage(half_covered_structure) == pytest.approx(5 / 9)

    def test_volume_estimate_between_zero_and_one(self, half_covered_structure):
        estimate = volume_coverage_estimate(half_covered_structure, samples=400, seed=0)
        assert 0.0 < estimate < 1.0
        # Expected volume fraction is (5/9)^4 ~ 0.095.
        assert estimate == pytest.approx((5 / 9) ** 4, abs=0.08)

    def test_volume_estimate_deterministic_with_seed(self, half_covered_structure):
        a = volume_coverage_estimate(half_covered_structure, samples=100, seed=3)
        b = volume_coverage_estimate(half_covered_structure, samples=100, seed=3)
        assert a == b

    def test_dispatch(self, half_covered_structure):
        assert coverage(half_covered_structure, "marginal") == pytest.approx(5 / 9)
        assert 0.0 <= coverage(half_covered_structure, "volume", samples=100) <= 1.0
        with pytest.raises(ValueError):
            coverage(half_covered_structure, "nope")
