"""Tests for integer intervals and the interval rows (Figure 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import Interval, IntervalList


def intervals(lo=0, hi=60):
    return st.tuples(st.integers(lo, hi), st.integers(lo, hi)).map(
        lambda pair: Interval(min(pair), max(pair))
    )


class TestInterval:
    def test_length_and_contains(self):
        interval = Interval(3, 7)
        assert interval.length == 5
        assert interval.contains(3) and interval.contains(7)
        assert not interval.contains(8)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_overlap_and_intersection(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).intersection(Interval(5, 9)) is None

    def test_containment(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert Interval(0, 10).strictly_contains(Interval(2, 8))
        assert not Interval(0, 10).strictly_contains(Interval(0, 8))

    def test_clamp_and_midpoint(self):
        interval = Interval(4, 10)
        assert interval.clamp(1) == 4
        assert interval.clamp(20) == 10
        assert interval.midpoint() == 7
        assert interval.as_tuple() == (4, 10)

    @given(intervals(), intervals())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        if a.overlaps(b):
            inter = a.intersection(b)
            assert inter.length <= min(a.length, b.length)


class TestIntervalListBasics:
    def test_empty_row(self):
        row = IntervalList()
        assert row.is_empty()
        assert row.query(5) == frozenset()
        assert row.covered_length() == 0

    def test_single_insert(self):
        row = IntervalList()
        row.insert(Interval(4, 10), index=0)
        assert row.query(4) == {0}
        assert row.query(10) == {0}
        assert row.query(11) == frozenset()
        assert row.covered_length() == 7
        assert row.indices() == {0}

    def test_disjoint_inserts(self):
        row = IntervalList()
        row.insert(Interval(0, 3), 0)
        row.insert(Interval(10, 12), 1)
        assert row.query(2) == {0}
        assert row.query(11) == {1}
        assert row.query(5) == frozenset()
        row.check_invariants()

    def test_overlapping_inserts_split_segments(self):
        row = IntervalList()
        row.insert(Interval(0, 10), 0)
        row.insert(Interval(5, 15), 1)
        assert row.query(3) == {0}
        assert row.query(7) == {0, 1}
        assert row.query(12) == {1}
        row.check_invariants()

    def test_contained_insert(self):
        row = IntervalList()
        row.insert(Interval(0, 20), 0)
        row.insert(Interval(8, 12), 1)
        assert row.query(8) == {0, 1}
        assert row.query(0) == {0}
        assert row.query(20) == {0}
        row.check_invariants()

    def test_remove_index(self):
        row = IntervalList()
        row.insert(Interval(0, 10), 0)
        row.insert(Interval(5, 15), 1)
        row.remove_index(0)
        assert row.query(3) == frozenset()
        assert row.query(7) == {1}
        assert row.indices() == {1}
        row.check_invariants()

    def test_covered_interval_for(self):
        row = IntervalList()
        row.insert(Interval(4, 12), 0)
        row.insert(Interval(8, 20), 1)
        assert row.covered_interval_for(0) == Interval(4, 12)
        assert row.covered_interval_for(1) == Interval(8, 20)
        assert row.covered_interval_for(99) is None

    def test_coalesce_merges_identical_neighbours(self):
        row = IntervalList()
        row.insert(Interval(0, 5), 0)
        row.insert(Interval(6, 10), 0)
        # Adjacent segments with the same index set are merged into one.
        assert len(row) == 1
        assert row.covered_length() == 11

    def test_serialization_roundtrip(self):
        row = IntervalList()
        row.insert(Interval(0, 10), 0)
        row.insert(Interval(5, 15), 1)
        rebuilt = IntervalList.from_list(row.to_list())
        for value in range(0, 16):
            assert rebuilt.query(value) == row.query(value)


class TestIntervalListProperties:
    @given(
        st.lists(
            st.tuples(intervals(), st.integers(0, 9)), min_size=1, max_size=15
        )
    )
    def test_query_matches_bruteforce(self, inserts):
        row = IntervalList()
        for interval, index in inserts:
            row.insert(interval, index)
        row.check_invariants()
        for value in range(0, 61):
            expected = {
                index for interval, index in inserts if interval.contains(value)
            }
            assert row.query(value) == expected

    @given(
        st.lists(
            st.tuples(intervals(), st.integers(0, 9)), min_size=1, max_size=12
        ),
        st.integers(0, 9),
    )
    def test_remove_index_matches_bruteforce(self, inserts, removed):
        row = IntervalList()
        for interval, index in inserts:
            row.insert(interval, index)
        row.remove_index(removed)
        row.check_invariants()
        for value in range(0, 61):
            expected = {
                index
                for interval, index in inserts
                if interval.contains(value) and index != removed
            }
            assert row.query(value) == expected
