"""Tests for the Block Dimensions-Interval Optimizer (Section 3.2)."""

import pytest

from repro.core.bdio import (
    BDIOConfig,
    BlockDimensionsIntervalOptimizer,
    EQ6_INTENT,
    EQ6_LITERAL,
    optimize_ranges,
)
from repro.core.expansion import expand_placement
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.cost.cost_function import PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from tests.conftest import build_chain_circuit


class TestBDIOConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BDIOConfig(max_iterations=0)
        with pytest.raises(ValueError):
            BDIOConfig(perturb_fraction=0.0)
        with pytest.raises(ValueError):
            BDIOConfig(eq6_mode="bogus")
        with pytest.raises(ValueError):
            BDIOConfig(min_interval_length=0)

    def test_scaled(self):
        config = BDIOConfig(max_iterations=100)
        assert config.scaled(0.1).max_iterations == 10
        assert config.scaled(0.0001).max_iterations == 1


class TestOptimizeRanges:
    def _ranges(self):
        return [DimensionRange(Interval(4, 20), Interval(4, 20))]

    def test_intent_mode_tightens_around_best(self):
        reduced = optimize_ranges(
            self._ranges(), [(10, 10)], average_cost=20.0, best_cost=10.0, mode=EQ6_INTENT
        )
        assert reduced[0].width.contains(10)
        assert reduced[0].height.contains(10)
        assert reduced[0].width.length < 17
        # Ratio best/avg = 0.5 -> roughly half the original length.
        assert reduced[0].width.length == pytest.approx(17 * 0.5, abs=1)

    def test_equal_costs_keep_full_interval(self):
        reduced = optimize_ranges(
            self._ranges(), [(10, 10)], average_cost=10.0, best_cost=10.0, mode=EQ6_INTENT
        )
        assert reduced[0].width.length == 17

    def test_literal_mode_does_not_tighten(self):
        reduced = optimize_ranges(
            self._ranges(), [(10, 10)], average_cost=30.0, best_cost=10.0, mode=EQ6_LITERAL
        )
        assert reduced[0].width == Interval(4, 20)

    def test_best_dims_near_boundary_stay_inside(self):
        reduced = optimize_ranges(
            self._ranges(), [(4, 20)], average_cost=40.0, best_cost=10.0, mode=EQ6_INTENT
        )
        assert reduced[0].width.contains(4)
        assert reduced[0].height.contains(20)
        assert reduced[0].width.start >= 4
        assert reduced[0].height.end <= 20

    def test_min_length_respected(self):
        reduced = optimize_ranges(
            self._ranges(), [(10, 10)], average_cost=1e9, best_cost=1.0,
            mode=EQ6_INTENT, min_length=3,
        )
        assert reduced[0].width.length >= 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            optimize_ranges(self._ranges(), [(10, 10), (5, 5)], 10.0, 5.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            optimize_ranges(self._ranges(), [(10, 10)], 10.0, 5.0, mode="nope")


class TestOptimizer:
    def _setup(self, num_blocks=3, seed=0):
        circuit = build_chain_circuit(num_blocks)
        bounds = FloorplanBounds(60, 60)
        cost_fn = PlacementCostFunction(circuit, bounds)
        anchors = [(i * 18, 0) for i in range(num_blocks)]
        ranges = expand_placement(circuit, anchors, bounds)
        bdio = BlockDimensionsIntervalOptimizer(
            cost_fn, BDIOConfig(max_iterations=80), seed=seed
        )
        return circuit, anchors, ranges, bdio, cost_fn

    def test_result_invariants(self):
        circuit, anchors, ranges, bdio, cost_fn = self._setup()
        result = bdio.optimize(anchors, ranges)
        assert result.best_cost <= result.average_cost + 1e-9
        assert result.evaluations <= 80
        assert len(result.reduced_ranges) == circuit.num_blocks
        # Best dims must lie inside the expanded ranges and the reduced ranges.
        for (w, h), expanded, reduced in zip(
            result.best_dims, ranges, result.reduced_ranges
        ):
            assert expanded.contains(w, h)
            assert reduced.contains(w, h)

    def test_reduced_ranges_within_expanded(self):
        _, anchors, ranges, bdio, _ = self._setup()
        result = bdio.optimize(anchors, ranges)
        for expanded, reduced in zip(ranges, result.reduced_ranges):
            assert expanded.width.contains_interval(reduced.width)
            assert expanded.height.contains_interval(reduced.height)

    def test_best_cost_matches_cost_function(self):
        circuit, anchors, ranges, bdio, cost_fn = self._setup()
        result = bdio.optimize(anchors, ranges)
        recomputed = cost_fn.evaluate_layout(anchors, result.best_dims).total
        assert recomputed == pytest.approx(result.best_cost)

    def test_deterministic_with_seed(self):
        _, anchors, ranges, _, cost_fn = self._setup()
        bdio_a = BlockDimensionsIntervalOptimizer(cost_fn, BDIOConfig(max_iterations=60), seed=11)
        bdio_b = BlockDimensionsIntervalOptimizer(cost_fn, BDIOConfig(max_iterations=60), seed=11)
        result_a = bdio_a.optimize(anchors, ranges)
        result_b = bdio_b.optimize(anchors, ranges)
        assert result_a.best_dims == result_b.best_dims
        assert result_a.average_cost == pytest.approx(result_b.average_cost)

    def test_single_value_intervals_handled(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(60, 60)
        cost_fn = PlacementCostFunction(circuit, bounds)
        ranges = [
            DimensionRange(Interval(4, 4), Interval(4, 4)),
            DimensionRange(Interval(4, 4), Interval(4, 4)),
        ]
        bdio = BlockDimensionsIntervalOptimizer(cost_fn, BDIOConfig(max_iterations=20), seed=0)
        result = bdio.optimize([(0, 0), (20, 0)], ranges)
        assert result.best_dims == ((4, 4), (4, 4))
