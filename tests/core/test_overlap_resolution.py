"""Tests for the Resolve Overlaps routine (Section 3.1.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intervals import Interval
from repro.core.overlap_resolution import (
    POLICY_DISCARD_NEWER,
    POLICY_SHRINK_NEWER,
    POLICY_SHRINK_WORSE,
    ResolutionReport,
    resolve_overlaps,
    shrink_interval_away,
    shrink_ranges_away,
    smallest_overlap_dimension,
)
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from tests.conftest import build_chain_circuit


def make_structure(num_blocks=2):
    circuit = build_chain_circuit(num_blocks)
    return MultiPlacementStructure(circuit, FloorplanBounds(60, 60))


def box(w, h, n=2):
    return [DimensionRange(Interval(*w), Interval(*h)) for _ in range(n)]


class TestShrinkInterval:
    def test_no_overlap_returns_original(self):
        assert shrink_interval_away(Interval(0, 5), Interval(8, 10)) == [Interval(0, 5)]

    def test_left_overlap(self):
        assert shrink_interval_away(Interval(5, 10), Interval(0, 7)) == [Interval(8, 10)]

    def test_right_overlap(self):
        assert shrink_interval_away(Interval(0, 10), Interval(7, 15)) == [Interval(0, 6)]

    def test_full_containment_forks(self):
        pieces = shrink_interval_away(Interval(0, 10), Interval(4, 6))
        assert pieces == [Interval(0, 3), Interval(7, 10)]

    def test_winner_covers_loser(self):
        assert shrink_interval_away(Interval(4, 6), Interval(0, 10)) == []

    @given(
        st.tuples(st.integers(0, 30), st.integers(0, 30)).map(lambda p: Interval(min(p), max(p))),
        st.tuples(st.integers(0, 30), st.integers(0, 30)).map(lambda p: Interval(min(p), max(p))),
    )
    def test_result_never_overlaps_winner(self, loser, winner):
        for piece in shrink_interval_away(loser, winner):
            assert not piece.overlaps(winner)
            assert loser.contains_interval(piece)


class TestSmallestOverlapDimension:
    def test_disjoint_boxes_return_none(self):
        assert smallest_overlap_dimension(box((0, 5), (0, 5)), box((8, 10), (0, 5))) is None

    def test_picks_smallest_row(self):
        a = box((0, 10), (0, 10))
        b = [
            DimensionRange(Interval(9, 20), Interval(0, 10)),  # width overlap length 2
            DimensionRange(Interval(0, 10), Interval(0, 10)),
        ]
        block_index, axis, overlap = smallest_overlap_dimension(a, b)
        assert (block_index, axis) == (0, "w")
        assert overlap == Interval(9, 10)


class TestShrinkRangesAway:
    def test_shrinks_only_selected_row(self):
        loser = box((0, 10), (0, 10))
        winner = box((8, 12), (0, 10))
        pieces = shrink_ranges_away(loser, winner, 0, "w")
        assert len(pieces) == 1
        assert pieces[0][0].width == Interval(0, 7)
        assert pieces[0][1].width == Interval(0, 10)  # other block untouched

    def test_fork_produces_two_boxes(self):
        loser = box((0, 20), (0, 10))
        winner = box((8, 12), (0, 10))
        pieces = shrink_ranges_away(loser, winner, 0, "w")
        assert len(pieces) == 2
        widths = sorted(piece[0].width.as_tuple() for piece in pieces)
        assert widths == [(0, 7), (13, 20)]


class TestResolveOverlaps:
    def test_non_overlapping_candidate_stored_directly(self):
        structure = make_structure()
        stored = resolve_overlaps(
            structure, [(0, 0), (20, 0)], box((4, 6), (4, 6)), 10.0, 9.0
        )
        assert len(stored) == 1
        assert structure.num_placements == 1

    def test_worse_new_placement_is_shrunk(self):
        structure = make_structure()
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((4, 8), (4, 8)), 10.0, 9.0)
        stored = resolve_overlaps(
            structure, [(0, 20), (20, 20)], box((6, 12), (4, 8)), 20.0, 15.0
        )
        structure.check_invariants()
        # The new, worse placement must not cover the existing placement's box.
        assert all(not sp.box_overlaps(structure.placement(0)) for sp in stored)

    def test_better_new_placement_shrinks_existing(self):
        structure = make_structure()
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((4, 8), (4, 8)), 20.0, 15.0)
        stored = resolve_overlaps(
            structure, [(0, 20), (20, 20)], box((6, 12), (4, 8)), 10.0, 9.0
        )
        structure.check_invariants()
        assert len(stored) == 1
        # The new placement keeps its full box.
        assert stored[0].ranges[0].width == Interval(6, 12)

    def test_new_placement_fully_covered_is_discarded(self):
        structure = make_structure()
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((4, 12), (4, 12)), 10.0, 9.0)
        report = ResolutionReport()
        stored = resolve_overlaps(
            structure,
            [(0, 20), (20, 20)],
            box((6, 8), (6, 8)),
            average_cost=50.0,
            best_cost=40.0,
            report=report,
        )
        assert stored == []
        assert report.discarded_new >= 1
        assert structure.num_placements == 1

    def test_existing_fully_covered_is_removed(self):
        structure = make_structure()
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((6, 8), (6, 8)), 50.0, 40.0)
        stored = resolve_overlaps(
            structure, [(0, 20), (20, 20)], box((4, 12), (4, 12)), 10.0, 9.0
        )
        structure.check_invariants()
        assert len(stored) == 1
        assert structure.num_placements == 1
        assert structure.placements()[0].average_cost == 10.0

    def test_fork_of_existing_placement(self):
        structure = make_structure()
        # Existing placement is wide in block 0's width; the new better one
        # sits strictly inside it -> the existing placement must fork.
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((4, 20), (4, 8)), 30.0, 20.0)
        report = ResolutionReport()
        resolve_overlaps(
            structure,
            [(0, 20), (20, 20)],
            box((10, 12), (4, 8)),
            average_cost=10.0,
            best_cost=9.0,
            report=report,
        )
        structure.check_invariants()
        assert report.forked >= 1
        assert structure.num_placements == 3

    def test_policy_discard_newer(self):
        structure = make_structure()
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((4, 8), (4, 8)), 30.0, 20.0)
        stored = resolve_overlaps(
            structure,
            [(0, 20), (20, 20)],
            box((6, 10), (6, 10)),
            average_cost=10.0,
            best_cost=9.0,
            policy=POLICY_DISCARD_NEWER,
        )
        assert stored == []
        assert structure.num_placements == 1

    def test_policy_shrink_newer_keeps_existing_intact(self):
        structure = make_structure()
        resolve_overlaps(structure, [(0, 0), (20, 0)], box((4, 8), (4, 8)), 30.0, 20.0)
        original_ranges = [r.as_tuple() for r in structure.placements()[0].ranges]
        resolve_overlaps(
            structure,
            [(0, 20), (20, 20)],
            box((6, 10), (6, 10)),
            average_cost=10.0,
            best_cost=9.0,
            policy=POLICY_SHRINK_NEWER,
        )
        structure.check_invariants()
        assert [r.as_tuple() for r in structure.placements()[0].ranges] == original_ranges

    def test_unknown_policy_rejected(self):
        structure = make_structure()
        with pytest.raises(ValueError):
            resolve_overlaps(
                structure, [(0, 0), (20, 0)], box((4, 8), (4, 8)), 10.0, 9.0, policy="nope"
            )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(4, 12), st.integers(4, 12)),
                st.tuples(st.integers(4, 12), st.integers(4, 12)),
                st.floats(1.0, 100.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_equation5_always_holds_after_resolution(self, candidates):
        structure = make_structure()
        for i, ((w_lo, w_len), (h_lo, h_len), cost) in enumerate(candidates):
            ranges = box((w_lo, w_lo + w_len), (h_lo, h_lo + h_len))
            resolve_overlaps(
                structure,
                [(0, i), (20, i)],
                ranges,
                average_cost=cost,
                best_cost=cost * 0.9,
            )
        # Pairwise disjoint dimension boxes == at most one query candidate.
        structure.check_invariants()
