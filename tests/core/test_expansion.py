"""Tests for the Placement Expansion step (Section 3.1.2)."""

from hypothesis import given, settings, strategies as st

from repro.core.expansion import expand_placement, placement_is_legal_at_min_dims
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from tests.conftest import build_chain_circuit

import pytest


class TestLegality:
    def test_legal_at_min_dims(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(40, 40)
        assert placement_is_legal_at_min_dims(circuit, [(0, 0), (20, 20)], bounds)

    def test_overlapping_at_min_dims(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(40, 40)
        assert not placement_is_legal_at_min_dims(circuit, [(0, 0), (2, 2)], bounds)

    def test_out_of_bounds_at_min_dims(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(40, 40)
        assert not placement_is_legal_at_min_dims(circuit, [(0, 0), (38, 0)], bounds)


class TestExpansion:
    def test_illegal_placement_returns_none(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(40, 40)
        assert expand_placement(circuit, [(0, 0), (2, 2)], bounds) is None

    def test_isolated_blocks_expand_to_maximum(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(100, 100)
        ranges = expand_placement(circuit, [(0, 0), (50, 50)], bounds)
        for block, dim_range in zip(circuit.blocks, ranges):
            assert dim_range.width.end == block.max_w
            assert dim_range.height.end == block.max_h
            assert dim_range.width.start == block.min_w

    def test_adjacent_blocks_limit_each_other(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(100, 100)
        # Blocks side by side, 8 apart: combined widths cannot exceed the gap.
        ranges = expand_placement(circuit, [(0, 0), (8, 0)], bounds)
        assert ranges[0].width.end <= 8
        assert ranges[1].height.end == circuit.blocks[1].max_h

    def test_floorplan_boundary_limits_expansion(self):
        circuit = build_chain_circuit(1)
        bounds = FloorplanBounds(10, 10)
        ranges = expand_placement(circuit, [(4, 4)], bounds)
        assert ranges[0].width.end == 6
        assert ranges[0].height.end == 6

    def test_expanded_maxima_do_not_overlap(self):
        circuit = build_chain_circuit(4)
        bounds = FloorplanBounds(40, 40)
        anchors = [(0, 0), (14, 0), (0, 14), (14, 14)]
        ranges = expand_placement(circuit, anchors, bounds)
        rects = [
            Rect(x, y, rng.width.end, rng.height.end)
            for (x, y), rng in zip(anchors, ranges)
        ]
        for i in range(len(rects)):
            assert bounds.contains(rects[i])
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])

    def test_step_parameter_validated(self):
        circuit = build_chain_circuit(1)
        bounds = FloorplanBounds(30, 30)
        with pytest.raises(ValueError):
            expand_placement(circuit, [(0, 0)], bounds, step=0)

    def test_wrong_anchor_count_rejected(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds(30, 30)
        with pytest.raises(ValueError):
            expand_placement(circuit, [(0, 0)], bounds)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1_000_000))
    def test_random_legal_placements_expand_without_overlap(self, seed):
        import random

        rng = random.Random(seed)
        circuit = build_chain_circuit(3)
        bounds = FloorplanBounds(50, 50)
        anchors = []
        for block in circuit.blocks:
            anchors.append(
                (
                    rng.randint(0, bounds.width - block.min_w),
                    rng.randint(0, bounds.height - block.min_h),
                )
            )
        ranges = expand_placement(circuit, anchors, bounds)
        if ranges is None:
            return  # illegal starting placement, nothing to check
        rects = [
            Rect(x, y, r.width.end, r.height.end) for (x, y), r in zip(anchors, ranges)
        ]
        for i in range(len(rects)):
            assert bounds.contains(rects[i])
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])
