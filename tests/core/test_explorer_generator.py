"""Tests for the Placement Explorer and the end-to-end generator."""

import pytest

from repro.core.bdio import BDIOConfig, BlockDimensionsIntervalOptimizer
from repro.core.explorer import ExplorerConfig, PlacementExplorer
from repro.core.generator import GenerationResult, GeneratorConfig, MultiPlacementGenerator
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from tests.conftest import build_chain_circuit


class TestExplorerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExplorerConfig(max_iterations=0)
        with pytest.raises(ValueError):
            ExplorerConfig(coverage_target=0.0)
        with pytest.raises(ValueError):
            ExplorerConfig(coverage_metric="nope")
        with pytest.raises(ValueError):
            ExplorerConfig(initial_placement="nope")

    def test_scaled(self):
        assert ExplorerConfig(max_iterations=50).scaled(0.2).max_iterations == 10


def run_explorer(num_blocks=3, iterations=6, seed=0, **config_kwargs):
    circuit = build_chain_circuit(num_blocks)
    bounds = FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=2.0)
    cost_fn = PlacementCostFunction(circuit, bounds)
    bdio = BlockDimensionsIntervalOptimizer(cost_fn, BDIOConfig(max_iterations=40), seed=seed)
    config = ExplorerConfig(max_iterations=iterations, coverage_target=0.99, **config_kwargs)
    explorer = PlacementExplorer(circuit, bounds, bdio, config=config, seed=seed)
    stats = explorer.run()
    return explorer, stats


class TestPlacementExplorer:
    def test_run_stores_placements(self):
        explorer, stats = run_explorer()
        assert explorer.structure.num_placements >= 1
        assert stats.iterations >= 1
        assert stats.stored_pieces >= explorer.structure.num_placements - stats.resolution.discarded_existing
        explorer.structure.check_invariants()

    def test_coverage_history_tracked(self):
        # Coverage is recorded after every successful iteration; it can dip
        # when a worse stored placement is later discarded, so only the value
        # range and the final bookkeeping are asserted.
        explorer, stats = run_explorer(iterations=8)
        assert stats.coverage_history
        assert all(0.0 <= value <= 1.0 for value in stats.coverage_history)
        assert stats.final_coverage == pytest.approx(
            explorer.structure.marginal_coverage()
        )

    def test_coverage_target_stops_early(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=3.0)
        cost_fn = PlacementCostFunction(circuit, bounds)
        bdio = BlockDimensionsIntervalOptimizer(cost_fn, BDIOConfig(max_iterations=30), seed=0)
        config = ExplorerConfig(max_iterations=50, coverage_target=0.05)
        explorer = PlacementExplorer(circuit, bounds, bdio, config=config, seed=0)
        stats = explorer.run()
        assert stats.iterations < 50

    def test_packed_initial_placement(self):
        explorer, stats = run_explorer(initial_placement="packed")
        assert explorer.structure.num_placements >= 1

    def test_uses_supplied_structure(self):
        circuit = build_chain_circuit(2)
        bounds = FloorplanBounds.for_blocks(circuit.max_dims())
        structure = MultiPlacementStructure(circuit, bounds)
        cost_fn = PlacementCostFunction(circuit, bounds)
        bdio = BlockDimensionsIntervalOptimizer(cost_fn, BDIOConfig(max_iterations=20), seed=0)
        explorer = PlacementExplorer(
            circuit, bounds, bdio, structure=structure,
            config=ExplorerConfig(max_iterations=3, coverage_target=0.99), seed=0,
        )
        explorer.run()
        assert explorer.structure is structure
        assert structure.num_placements >= 1

    def test_stored_placements_are_legal_layouts(self):
        explorer, _ = run_explorer(iterations=8)
        structure = explorer.structure
        bounds = structure.bounds
        for placement in structure:
            dims = [(r.width.end, r.height.end) for r in placement.ranges]
            rects = [
                Rect(x, y, w, h) for (x, y), (w, h) in zip(placement.anchors, dims)
            ]
            for i in range(len(rects)):
                assert bounds.contains(rects[i])
                for j in range(i + 1, len(rects)):
                    assert not rects[i].intersects(rects[j])


class TestGeneratorConfig:
    def test_presets_ordering(self):
        smoke = GeneratorConfig.smoke()
        default = GeneratorConfig.default()
        paper = GeneratorConfig.paper()
        assert smoke.explorer.max_iterations < default.explorer.max_iterations
        assert default.explorer.max_iterations < paper.explorer.max_iterations

    def test_scaled(self):
        config = GeneratorConfig.default().scaled(0.5)
        assert config.explorer.max_iterations == GeneratorConfig.default().explorer.max_iterations // 2


class TestMultiPlacementGenerator:
    def test_generate_with_stats(self, chain_circuit):
        generator = MultiPlacementGenerator(chain_circuit, GeneratorConfig.smoke(seed=1))
        result = generator.generate_with_stats()
        assert isinstance(result, GenerationResult)
        assert result.num_placements >= 1
        assert result.elapsed_seconds > 0
        result.structure.check_invariants()

    def test_generated_structure_has_fallback(self, chain_circuit):
        generator = MultiPlacementGenerator(chain_circuit, GeneratorConfig.smoke(seed=1))
        structure = generator.generate()
        assert structure.fallback_anchors is not None
        # The fallback must be legal at maximum block dimensions.
        rects = [
            Rect(x, y, w, h)
            for (x, y), (w, h) in zip(structure.fallback_anchors, chain_circuit.max_dims())
        ]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])

    def test_same_seed_reproducible(self, chain_circuit):
        result_a = MultiPlacementGenerator(chain_circuit, GeneratorConfig.smoke(seed=5)).generate()
        result_b = MultiPlacementGenerator(chain_circuit, GeneratorConfig.smoke(seed=5)).generate()
        assert result_a.num_placements == result_b.num_placements
        assert [p.anchors for p in result_a] == [p.anchors for p in result_b]

    def test_invalid_circuit_rejected(self):
        from repro.circuit.netlist import Circuit

        with pytest.raises(Exception):
            MultiPlacementGenerator(Circuit("empty"), GeneratorConfig.smoke())

    def test_bounds_fit_all_blocks(self, chain_circuit):
        generator = MultiPlacementGenerator(chain_circuit, GeneratorConfig.smoke())
        max_w = max(w for w, _ in chain_circuit.max_dims())
        max_h = max(h for _, h in chain_circuit.max_dims())
        assert generator.bounds.width >= max_w
        assert generator.bounds.height >= max_h
