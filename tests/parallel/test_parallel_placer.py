"""Tests for the ``"parallel"`` engine and the service's process fan-out."""

import pytest

from repro.api import available_placers, make_placer
from repro.core.generator import GeneratorConfig
from repro.parallel.placer import ParallelPlacer
from repro.parallel.sharding import ShardedStructureRegistry
from repro.service.engine import PlacementService
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)


def make_queries(n, unique=4):
    vectors = [[(4 + i % 9, 4 + (i * 3) % 9)] * 4 for i in range(unique)]
    return [vectors[i % unique] for i in range(n)]


class TestParallelPlacer:
    def test_registered_as_builtin_kind(self):
        assert "parallel" in available_placers()

    def test_spec_round_trip(self):
        circuit = build_chain_circuit()
        placer = make_placer(
            {"kind": "parallel", "inner": {"kind": "template"}, "workers": 2}, circuit
        )
        assert isinstance(placer, ParallelPlacer)
        assert placer.spec["kind"] == "parallel"
        clone = make_placer(placer.spec, circuit)
        assert isinstance(clone, ParallelPlacer)
        assert clone.inner_spec == placer.inner_spec
        placer.close()
        clone.close()

    def test_single_place_uses_local_engine(self):
        circuit = build_chain_circuit()
        with ParallelPlacer(circuit, {"kind": "template"}, workers=2) as placer:
            placement = placer.place([(6, 6)] * 4)
            assert set(placement.rects) == set(circuit.block_names())
            # No pool was spun up for a single query.
            assert placer.pool.counters["batches"] == 0

    def test_batch_matches_inner_engine_exactly(self):
        circuit = build_chain_circuit()
        queries = make_queries(12)
        inner = make_placer({"kind": "template"}, circuit)
        expected = inner.place_batch(queries)
        with ParallelPlacer(circuit, {"kind": "template"}, workers=3) as placer:
            got = placer.place_batch(queries)
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost

    def test_batch_identical_across_worker_counts(self):
        circuit = build_chain_circuit()
        queries = make_queries(10)
        batches = {}
        for workers in (1, 2, 4):
            with ParallelPlacer(circuit, {"kind": "template"}, workers=workers) as placer:
                batches[workers] = placer.place_batch(queries)
        for workers in (2, 4):
            for a, b in zip(batches[1], batches[workers]):
                assert dict(a.rects) == dict(b.rects)
                assert a.cost == b.cost

    def test_reseed_per_query_makes_stochastic_engines_deterministic(self):
        circuit = build_chain_circuit()
        queries = make_queries(6, unique=6)
        results = {}
        for workers in (1, 3):
            with ParallelPlacer(
                circuit,
                {"kind": "random", "seed": 13, "attempts": 20},
                workers=workers,
                reseed="per_query",
            ) as placer:
                results[workers] = placer.place_batch(queries)
        for a, b in zip(results[1], results[3]):
            assert dict(a.rects) == dict(b.rects)

    def test_invalid_reseed_rejected(self):
        with pytest.raises(ValueError):
            ParallelPlacer(build_chain_circuit(), {"kind": "template"}, reseed="bogus")

    def test_stats_merge_worker_counters(self):
        circuit = build_chain_circuit()
        with ParallelPlacer(circuit, {"kind": "template"}, workers=2) as placer:
            placer.place_batch(make_queries(8))
            stats = placer.stats()
        assert stats["queries"] == 8
        assert stats["batches"] == 1
        assert stats["workers"] == 2
        assert stats["pool_unique_queries"] == 4
        assert stats["worker_queries"] == 4


class TestServiceProcessFanOut:
    @pytest.fixture
    def service(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        yield service
        service.close()

    def test_workers_batch_matches_serial(self, service):
        circuit = build_chain_circuit()
        queries = make_queries(16)
        serial = service.instantiate_batch(circuit, queries)
        pooled = service.instantiate_batch(circuit, queries, workers=2)
        for a, b in zip(serial.results, pooled.results):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost
        assert pooled.pool_stats["pool_jobs"] >= 1
        assert pooled.duplicate_queries == 12

    def test_workers_merge_service_stats(self, service):
        circuit = build_chain_circuit()
        service.instantiate_batch(circuit, make_queries(8), workers=2)
        stats = service.stats
        assert stats.batches == 1
        assert stats.queries == 8
        assert stats.dedup_hits == 4
        # The workers loaded (or generated) the structure; their counters merged.
        assert stats.structures_loaded + stats.structures_generated >= 1

    def test_adopted_structure_reaches_process_workers(self, tmp_path):
        # Regression: adopt() used to seed only the in-memory LRU, so the
        # workers=N path regenerated a different structure in each worker.
        from repro.core.generator import MultiPlacementGenerator

        circuit = build_chain_circuit()
        adopted_config = GeneratorConfig.smoke(seed=41)
        structure = MultiPlacementGenerator(circuit, adopted_config).generate()
        registry = ShardedStructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=adopted_config)
        service.adopt(structure)
        assert registry.contains(circuit, adopted_config)  # persisted, not just cached
        queries = make_queries(8)
        serial = service.instantiate_batch(circuit, queries)
        pooled = service.instantiate_batch(circuit, queries, workers=2)
        for a, b in zip(serial.results, pooled.results):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost
        # Nothing was regenerated anywhere: the workers loaded the adopted copy.
        assert pooled.pool_stats.get("structures_generated", 0) == 0
        service.close()

    def test_workers_without_registry_degrade_to_threads(self, tmp_path):
        service = PlacementService(None, default_config=SMOKE)
        batch = service.instantiate_batch(build_chain_circuit(), make_queries(6), workers=4)
        assert len(batch.results) == 6
        assert batch.pool_stats == {}

    def test_route_batch_shares_layouts_across_duplicates(self, service):
        circuit = build_chain_circuit()
        pairs = service.route_batch(circuit, make_queries(6, unique=2), workers=2)
        assert len(pairs) == 6
        for placement, layout in pairs:
            assert placement.is_routed
            assert placement.routing["routed_wirelength"] == pytest.approx(
                layout.total_wirelength
            )
        assert pairs[0][1] is pairs[2][1]  # duplicate floorplans share the layout
        assert service.stats.route_queries == 6

    def test_route_batch_serial_matches_pooled(self, service):
        circuit = build_chain_circuit()
        queries = make_queries(4, unique=4)
        pooled = service.route_batch(circuit, queries, workers=2)
        service_serial = PlacementService(
            ShardedStructureRegistry(service.registry.root), default_config=SMOKE
        )
        serial = service_serial.route_batch(circuit, queries)
        for (pp, pl), (sp, sl) in zip(pooled, serial):
            assert dict(pp.rects) == dict(sp.rects)
            assert pl.total_wirelength == pytest.approx(sl.total_wirelength)
