"""Tests for the worker pool and its picklable job layer."""

import pickle

import pytest

from repro.core.serialization import circuit_to_dict
from repro.parallel.jobs import (
    JobResult,
    PlacementJob,
    chunk_evenly,
    make_placement_jobs,
    run_placement_job,
)
from repro.parallel.pool import WorkerPool, default_workers, resolve_start_method
from tests.conftest import build_chain_circuit


@pytest.fixture(scope="module")
def chain_data():
    return circuit_to_dict(build_chain_circuit())


def make_queries(n, unique=None):
    unique = unique if unique is not None else n
    vectors = [[(4 + i % 9, 4 + (i * 3) % 9)] * 4 for i in range(unique)]
    return [vectors[i % unique] for i in range(n)]


def run_pid_job(job_id):
    """Picklable runner reporting which process executed the job."""
    import os

    return JobResult(job_id=job_id, results=[os.getpid()], worker_pid=os.getpid())


class TestChunking:
    def test_chunks_cover_in_order(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_empty_and_invalid(self):
        assert chunk_evenly([], 4) == []
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


class TestJobs:
    def test_jobs_are_picklable(self, chain_data):
        jobs = make_placement_jobs(chain_data, {"kind": "template"}, make_queries(6), 2)
        assert len(jobs) == 2
        for job in jobs:
            clone = pickle.loads(pickle.dumps(job))
            assert clone.queries == job.queries
            assert clone.spec == job.spec

    def test_run_job_inline_matches_direct_placement(self, chain_data):
        queries = make_queries(4)
        job = make_placement_jobs(chain_data, {"kind": "template"}, queries, 1)[0]
        result = run_placement_job(job)
        assert len(result.results) == 4
        from repro.api import make_placer

        direct = make_placer({"kind": "template"}, build_chain_circuit())
        expected = [direct.place(query) for query in queries]
        for got, want in zip(result.results, expected):
            assert dict(got.rects) == dict(want.rects)
            assert got.cost == want.cost

    def test_per_query_seed_length_checked(self, chain_data):
        with pytest.raises(ValueError):
            PlacementJob(
                circuit_data=chain_data,
                spec={"kind": "template"},
                queries=tuple(tuple(q) for q in make_queries(3)),
                per_query_seeds=(1, 2),
            )

    def test_worker_cache_distinguishes_same_named_circuits(self):
        # Regression: the worker placer cache used to key on circuit *name*,
        # serving a stale engine for a different circuit with the same name.
        small = circuit_to_dict(build_chain_circuit(num_blocks=4, name="chain"))
        large = circuit_to_dict(build_chain_circuit(num_blocks=6, name="chain"))
        job_small = make_placement_jobs(small, {"kind": "template"}, [[(6, 6)] * 4], 1)[0]
        job_large = make_placement_jobs(large, {"kind": "template"}, [[(6, 6)] * 6], 1)[0]
        run_placement_job(job_small)
        result = run_placement_job(job_large)  # used to hit the 4-block placer
        assert len(result.results[0].rects) == 6

    def test_job_stats_report_worker_counters(self, chain_data):
        job = make_placement_jobs(chain_data, {"kind": "template"}, make_queries(5), 1)[0]
        result = run_placement_job(job)
        assert result.stats.get("queries", 0) >= 1
        assert result.worker_pid > 0


class TestWorkerPool:
    def test_start_method_resolution(self):
        assert resolve_start_method() in ("fork", "spawn")
        with pytest.raises(ValueError):
            resolve_start_method("not-a-method")
        assert default_workers() >= 1

    def test_inline_and_pooled_results_identical(self, chain_data):
        queries = make_queries(12, unique=6)
        with WorkerPool(workers=1) as inline_pool:
            inline, _ = inline_pool.place_batch(chain_data, {"kind": "template"}, queries)
        with WorkerPool(workers=3) as pool:
            pooled, stats = pool.place_batch(chain_data, {"kind": "template"}, queries)
        assert len(inline) == len(pooled) == 12
        for a, b in zip(inline, pooled):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost
        assert stats["pool_unique_queries"] == 6
        assert stats["pool_dedup_hits"] == 6

    def test_duplicates_share_one_result_object(self, chain_data):
        queries = make_queries(8, unique=2)
        with WorkerPool(workers=2) as pool:
            results, _ = pool.place_batch(chain_data, {"kind": "template"}, queries)
        assert results[0] is results[2]
        assert results[1] is results[3]

    def test_pool_counters_accumulate(self, chain_data):
        pool = WorkerPool(workers=1)
        pool.place_batch(chain_data, {"kind": "template"}, make_queries(3))
        pool.place_batch(chain_data, {"kind": "template"}, make_queries(3))
        counters = pool.counters
        assert counters["batches"] == 2
        assert counters["jobs"] == 2
        pool.close()

    def test_close_is_idempotent_and_restartable(self, chain_data):
        pool = WorkerPool(workers=2)
        pool.place_batch(chain_data, {"kind": "template"}, make_queries(8))
        pool.close()
        pool.close()
        results, _ = pool.place_batch(chain_data, {"kind": "template"}, make_queries(4))
        assert len(results) == 4
        pool.close()

    def test_route_batch_on_pool(self, chain_data):
        queries = make_queries(4, unique=2)
        with WorkerPool(workers=2) as pool:
            placements, _ = pool.place_batch(chain_data, {"kind": "template"}, queries)
            rects_batch = [
                {name: (rect.x, rect.y, rect.w, rect.h) for name, rect in p.rects.items()}
                for p in placements
            ]
            layouts, stats = pool.route_batch(chain_data, rects_batch)
        assert len(layouts) == 4
        assert stats["route_queries"] == 4
        for layout in layouts:
            assert layout.total_wirelength >= 0


class TestPinnedDispatch:
    def test_pinned_jobs_land_in_one_dedicated_process(self):
        import os

        with WorkerPool(workers=3) as pool:
            first = pool.run_jobs(list(range(4)), run_pid_job, pin_slot=1)
            second = pool.run_jobs(list(range(4)), run_pid_job, pin_slot=1)
            pids = {result.results[0] for result in first + second}
        # Every job of every pinned dispatch ran in the same worker
        # process — that process's caches stay warm across batches.
        assert len(pids) == 1
        assert os.getpid() not in pids

    def test_distinct_slots_use_distinct_processes(self):
        with WorkerPool(workers=2) as pool:
            slot0 = pool.run_jobs([0], run_pid_job, pin_slot=0)
            slot1 = pool.run_jobs([0], run_pid_job, pin_slot=1)
        assert slot0[0].results[0] != slot1[0].results[0]

    def test_pinning_bypasses_the_inline_path(self):
        import os

        with WorkerPool(workers=2) as pool:
            # A single job would run inline without a pin; pinned it must
            # still cross into the slot's worker process.
            result = pool.run_jobs([0], run_pid_job, pin_slot=0)
            counters = pool.counters
        assert result[0].results[0] != os.getpid()
        assert counters["pinned_jobs"] == 1
        assert counters["inline_jobs"] == 0

    def test_one_worker_pool_ignores_pinning(self):
        import os

        with WorkerPool(workers=1) as pool:
            result = pool.run_jobs([0], run_pid_job, pin_slot=0)
            counters = pool.counters
        assert result[0].results[0] == os.getpid()
        assert counters["pinned_jobs"] == 0
        assert counters["inline_jobs"] == 1

    def test_out_of_range_slot_rejected(self):
        with WorkerPool(workers=2) as pool:
            with pytest.raises(ValueError, match="out of range"):
                pool.run_jobs(list(range(3)), run_pid_job, pin_slot=2)
            with pytest.raises(ValueError, match="out of range"):
                pool.run_jobs(list(range(3)), run_pid_job, pin_slot=-1)

    def test_close_shuts_pinned_executors_and_restarts(self):
        pool = WorkerPool(workers=2)
        before = pool.run_jobs([0], run_pid_job, pin_slot=0)[0].results[0]
        pool.close()
        after = pool.run_jobs([0], run_pid_job, pin_slot=0)[0].results[0]
        pool.close()
        assert before != after  # a fresh process after close()

    def test_place_batch_pin_slot_single_job_same_process(self, chain_data):
        with WorkerPool(workers=3) as pool:
            results, stats = pool.place_batch(
                chain_data, {"kind": "template"}, make_queries(12, unique=6),
                pin_slot=2,
            )
        assert len(results) == 12
        assert stats["pool_pinned_slot"] == 2.0
        # The whole batch ran as one job in the slot's one process.
        assert stats["pool_jobs"] == 1.0
        assert stats["pool_worker_processes"] == 1.0

    def test_prestart_forks_workers_and_slots_eagerly(self):
        import os

        pool = WorkerPool(workers=2)
        try:
            pool.prestart(pin_slots=[0, 1])
            # Every executor (fan-out and both pinned slots) exists before
            # any dispatch: later pinned jobs reuse the pre-forked process
            # instead of forking mid-traffic.
            assert pool._executor is not None
            pre = dict(pool._pinned)
            assert set(pre) == {0, 1}
            result = pool.run_jobs([0], run_pid_job, pin_slot=0)
            assert result[0].results[0] != os.getpid()
            assert pool._pinned[0] is pre[0]
        finally:
            pool.close()

    def test_prestart_is_a_noop_for_one_worker(self):
        pool = WorkerPool(workers=1)
        pool.prestart()
        assert pool._executor is None
        pool.close()

    def test_pinned_and_fanout_results_identical(self, chain_data):
        queries = make_queries(10, unique=5)
        with WorkerPool(workers=3) as pool:
            fanned, _ = pool.place_batch(chain_data, {"kind": "template"}, queries)
            pinned, _ = pool.place_batch(
                chain_data, {"kind": "template"}, queries, pin_slot=1
            )
        for a, b in zip(fanned, pinned):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost
