"""Tests for the worker pool and its picklable job layer."""

import pickle

import pytest

from repro.core.serialization import circuit_to_dict
from repro.parallel.jobs import (
    PlacementJob,
    chunk_evenly,
    make_placement_jobs,
    run_placement_job,
)
from repro.parallel.pool import WorkerPool, default_workers, resolve_start_method
from tests.conftest import build_chain_circuit


@pytest.fixture(scope="module")
def chain_data():
    return circuit_to_dict(build_chain_circuit())


def make_queries(n, unique=None):
    unique = unique if unique is not None else n
    vectors = [[(4 + i % 9, 4 + (i * 3) % 9)] * 4 for i in range(unique)]
    return [vectors[i % unique] for i in range(n)]


class TestChunking:
    def test_chunks_cover_in_order(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_empty_and_invalid(self):
        assert chunk_evenly([], 4) == []
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


class TestJobs:
    def test_jobs_are_picklable(self, chain_data):
        jobs = make_placement_jobs(chain_data, {"kind": "template"}, make_queries(6), 2)
        assert len(jobs) == 2
        for job in jobs:
            clone = pickle.loads(pickle.dumps(job))
            assert clone.queries == job.queries
            assert clone.spec == job.spec

    def test_run_job_inline_matches_direct_placement(self, chain_data):
        queries = make_queries(4)
        job = make_placement_jobs(chain_data, {"kind": "template"}, queries, 1)[0]
        result = run_placement_job(job)
        assert len(result.results) == 4
        from repro.api import make_placer

        direct = make_placer({"kind": "template"}, build_chain_circuit())
        expected = [direct.place(query) for query in queries]
        for got, want in zip(result.results, expected):
            assert dict(got.rects) == dict(want.rects)
            assert got.cost == want.cost

    def test_per_query_seed_length_checked(self, chain_data):
        with pytest.raises(ValueError):
            PlacementJob(
                circuit_data=chain_data,
                spec={"kind": "template"},
                queries=tuple(tuple(q) for q in make_queries(3)),
                per_query_seeds=(1, 2),
            )

    def test_worker_cache_distinguishes_same_named_circuits(self):
        # Regression: the worker placer cache used to key on circuit *name*,
        # serving a stale engine for a different circuit with the same name.
        small = circuit_to_dict(build_chain_circuit(num_blocks=4, name="chain"))
        large = circuit_to_dict(build_chain_circuit(num_blocks=6, name="chain"))
        job_small = make_placement_jobs(small, {"kind": "template"}, [[(6, 6)] * 4], 1)[0]
        job_large = make_placement_jobs(large, {"kind": "template"}, [[(6, 6)] * 6], 1)[0]
        run_placement_job(job_small)
        result = run_placement_job(job_large)  # used to hit the 4-block placer
        assert len(result.results[0].rects) == 6

    def test_job_stats_report_worker_counters(self, chain_data):
        job = make_placement_jobs(chain_data, {"kind": "template"}, make_queries(5), 1)[0]
        result = run_placement_job(job)
        assert result.stats.get("queries", 0) >= 1
        assert result.worker_pid > 0


class TestWorkerPool:
    def test_start_method_resolution(self):
        assert resolve_start_method() in ("fork", "spawn")
        with pytest.raises(ValueError):
            resolve_start_method("not-a-method")
        assert default_workers() >= 1

    def test_inline_and_pooled_results_identical(self, chain_data):
        queries = make_queries(12, unique=6)
        with WorkerPool(workers=1) as inline_pool:
            inline, _ = inline_pool.place_batch(chain_data, {"kind": "template"}, queries)
        with WorkerPool(workers=3) as pool:
            pooled, stats = pool.place_batch(chain_data, {"kind": "template"}, queries)
        assert len(inline) == len(pooled) == 12
        for a, b in zip(inline, pooled):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost
        assert stats["pool_unique_queries"] == 6
        assert stats["pool_dedup_hits"] == 6

    def test_duplicates_share_one_result_object(self, chain_data):
        queries = make_queries(8, unique=2)
        with WorkerPool(workers=2) as pool:
            results, _ = pool.place_batch(chain_data, {"kind": "template"}, queries)
        assert results[0] is results[2]
        assert results[1] is results[3]

    def test_pool_counters_accumulate(self, chain_data):
        pool = WorkerPool(workers=1)
        pool.place_batch(chain_data, {"kind": "template"}, make_queries(3))
        pool.place_batch(chain_data, {"kind": "template"}, make_queries(3))
        counters = pool.counters
        assert counters["batches"] == 2
        assert counters["jobs"] == 2
        pool.close()

    def test_close_is_idempotent_and_restartable(self, chain_data):
        pool = WorkerPool(workers=2)
        pool.place_batch(chain_data, {"kind": "template"}, make_queries(8))
        pool.close()
        pool.close()
        results, _ = pool.place_batch(chain_data, {"kind": "template"}, make_queries(4))
        assert len(results) == 4
        pool.close()

    def test_route_batch_on_pool(self, chain_data):
        queries = make_queries(4, unique=2)
        with WorkerPool(workers=2) as pool:
            placements, _ = pool.place_batch(chain_data, {"kind": "template"}, queries)
            rects_batch = [
                {name: (rect.x, rect.y, rect.w, rect.h) for name, rect in p.rects.items()}
                for p in placements
            ]
            layouts, stats = pool.route_batch(chain_data, rects_batch)
        assert len(layouts) == 4
        assert stats["route_queries"] == 4
        for layout in layouts:
            assert layout.total_wirelength >= 0
