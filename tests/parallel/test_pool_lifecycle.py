"""Lifecycle-safety tests for WorkerPool: double close, atexit guard."""

import threading

import pytest

from repro.parallel import pool as pool_module
from repro.parallel.placer import ParallelPlacer
from repro.parallel.pool import WorkerPool, _LIVE_POOLS, _close_live_pools
from tests.conftest import build_chain_circuit


def started_pool():
    pool = WorkerPool(workers=2)
    pool._ensure_executor()
    return pool


class TestDoubleClose:
    def test_close_is_idempotent(self):
        pool = started_pool()
        pool.close()
        pool.close()
        assert pool._executor is None

    def test_close_without_start_is_a_noop(self):
        WorkerPool(workers=2).close()

    def test_exit_after_explicit_close(self):
        # The pattern a failing server hits: close() in an error path,
        # then __exit__ runs again on unwind.
        with started_pool() as pool:
            pool.close()
        assert pool._executor is None

    def test_exit_after_error_still_closes(self):
        with pytest.raises(RuntimeError):
            with started_pool() as pool:
                raise RuntimeError("boom")
        assert pool._executor is None

    def test_pool_restarts_after_close(self):
        pool = WorkerPool(workers=2)
        first = pool._ensure_executor()
        pool.close()
        second = pool._ensure_executor()
        assert second is not first
        pool.close()

    def test_concurrent_closes_race_safely(self):
        pool = started_pool()
        barrier = threading.Barrier(4)

        def slam():
            barrier.wait()
            pool.close()

        threads = [threading.Thread(target=slam) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert pool._executor is None

    def test_parallel_placer_close_is_idempotent(self):
        placer = ParallelPlacer(
            build_chain_circuit(), {"kind": "template"}, workers=2
        )
        placer.close()
        placer.close()
        with placer:
            pass  # __exit__ closes a third time


class TestAtexitGuard:
    def test_started_pool_registers_for_atexit_cleanup(self):
        pool = started_pool()
        assert pool in _LIVE_POOLS
        pool.close()
        assert pool not in _LIVE_POOLS

    def test_guard_shuts_down_leaked_pools(self):
        pool = started_pool()
        _close_live_pools()
        assert pool._executor is None
        # A reaped pool is restartable and closeable as usual.
        pool.close()

    def test_guard_tolerates_already_closed_pools(self):
        pool = started_pool()
        pool.close()
        _close_live_pools()

    def test_atexit_hook_is_registered_once(self):
        started_pool().close()
        started_pool().close()
        assert pool_module._ATEXIT_REGISTERED
