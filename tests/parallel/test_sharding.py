"""Tests for the shard-aware registry and layout auto-detection."""

import json

import pytest

from repro.core.generator import GeneratorConfig
from repro.parallel.sharding import (
    MARKER_NAME,
    ShardedStructureRegistry,
    advisory_lock,
    open_registry,
)
from repro.service.registry import StructureRegistry
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)


@pytest.fixture
def registry(tmp_path):
    return ShardedStructureRegistry(tmp_path / "registry")


class TestSharding:
    def test_keys_land_in_prefix_shards(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        key = registry.key_for(circuit, SMOKE)
        shard_dir = registry.root / key[: registry.shard_chars]
        assert shard_dir.is_dir()
        assert (shard_dir / f"{key}.json").exists()
        assert registry.keys() == [key]
        assert len(registry) == 1

    def test_distinct_configs_distinct_slots(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        registry.get_or_generate(circuit, GeneratorConfig.smoke(seed=8))
        assert len(registry) == 2

    def test_fetch_generates_once_then_loads(self, registry):
        circuit = build_chain_circuit()
        _, generated = registry.fetch(circuit, SMOKE)
        assert generated
        _, generated = registry.fetch(circuit, SMOKE)
        assert not generated
        assert registry.stats.generations == 1
        assert registry.stats.loads == 1

    def test_cross_instance_visibility(self, registry):
        # A structure put by one instance is immediately fetchable by a
        # second instance sharing the root (the reload-under-lock path).
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        sibling = ShardedStructureRegistry(registry.root)
        structure, generated = sibling.fetch(circuit, SMOKE)
        assert not generated
        assert structure.num_placements > 0
        assert sibling.contains(circuit, SMOKE)

    def test_marker_pins_shard_chars(self, tmp_path):
        root = tmp_path / "registry"
        ShardedStructureRegistry(root, shard_chars=3)
        reopened = ShardedStructureRegistry(root, shard_chars=1)
        assert reopened.shard_chars == 3
        with (root / MARKER_NAME).open() as handle:
            assert json.load(handle)["shard_chars"] == 3

    def test_entries_and_entry_lookup(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        key = registry.key_for(circuit, SMOKE)
        entries = registry.entries()
        assert [entry.key for entry in entries] == [key]
        assert registry.entry(key) == entries[0]
        assert registry.entry("0" * 33) is None

    def test_clear_empties_every_shard(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        registry.get_or_generate(build_chain_circuit(num_blocks=3, name="c3"), SMOKE)
        registry.clear()
        assert len(registry) == 0
        assert ShardedStructureRegistry(registry.root).keys() == []

    def test_invalid_shard_chars_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStructureRegistry(tmp_path / "r", shard_chars=0)


class TestOpenRegistry:
    def test_fresh_root_defaults_to_flat(self, tmp_path):
        assert isinstance(open_registry(tmp_path / "fresh"), StructureRegistry)

    def test_fresh_root_sharded_on_request(self, tmp_path):
        assert isinstance(
            open_registry(tmp_path / "fresh", sharded=True), ShardedStructureRegistry
        )

    def test_existing_layouts_autodetected(self, tmp_path, generated_chain_structure):
        flat_root = tmp_path / "flat"
        StructureRegistry(flat_root).put(generated_chain_structure, SMOKE)
        sharded_root = tmp_path / "sharded"
        ShardedStructureRegistry(sharded_root)
        assert isinstance(open_registry(flat_root), StructureRegistry)
        assert isinstance(open_registry(sharded_root), ShardedStructureRegistry)

    def test_layout_conflicts_raise(self, tmp_path, generated_chain_structure):
        flat_root = tmp_path / "flat"
        StructureRegistry(flat_root).put(generated_chain_structure, SMOKE)
        with pytest.raises(ValueError):
            open_registry(flat_root, sharded=True)
        sharded_root = tmp_path / "sharded"
        ShardedStructureRegistry(sharded_root)
        with pytest.raises(ValueError):
            open_registry(sharded_root, sharded=False)


class TestAdvisoryLock:
    def test_lock_creates_file_and_releases(self, tmp_path):
        lock_path = tmp_path / "locks" / "key.lock"
        with advisory_lock(lock_path):
            assert lock_path.exists()
        # Re-acquirable after release (same process).
        with advisory_lock(lock_path):
            pass

    def test_reap_temp_files_across_shards(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        key = registry.key_for(circuit, SMOKE)
        shard_dir = registry.root / key[: registry.shard_chars]
        stale = shard_dir / ".victim.json.abc.tmp"
        stale.write_text("{}")
        import os

        os.utime(stale, (0, 0))  # pretend the writer died long ago
        reaped = registry.reap_temp_files()
        assert stale in reaped
        assert not stale.exists()
