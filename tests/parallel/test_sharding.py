"""Tests for the shard-aware registry and layout auto-detection."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.core.generator import GeneratorConfig
from repro.parallel.sharding import (
    MARKER_NAME,
    ShardedStructureRegistry,
    ShardOwnerMap,
    advisory_lock,
    open_registry,
)
from repro.service.registry import StructureRegistry
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)


@pytest.fixture
def registry(tmp_path):
    return ShardedStructureRegistry(tmp_path / "registry")


class TestSharding:
    def test_keys_land_in_prefix_shards(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        key = registry.key_for(circuit, SMOKE)
        shard_dir = registry.root / key[: registry.shard_chars]
        assert shard_dir.is_dir()
        assert (shard_dir / f"{key}.json").exists()
        assert registry.keys() == [key]
        assert len(registry) == 1

    def test_distinct_configs_distinct_slots(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        registry.get_or_generate(circuit, GeneratorConfig.smoke(seed=8))
        assert len(registry) == 2

    def test_fetch_generates_once_then_loads(self, registry):
        circuit = build_chain_circuit()
        _, generated = registry.fetch(circuit, SMOKE)
        assert generated
        _, generated = registry.fetch(circuit, SMOKE)
        assert not generated
        assert registry.stats.generations == 1
        assert registry.stats.loads == 1

    def test_cross_instance_visibility(self, registry):
        # A structure put by one instance is immediately fetchable by a
        # second instance sharing the root (the reload-under-lock path).
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        sibling = ShardedStructureRegistry(registry.root)
        structure, generated = sibling.fetch(circuit, SMOKE)
        assert not generated
        assert structure.num_placements > 0
        assert sibling.contains(circuit, SMOKE)

    def test_marker_pins_shard_chars(self, tmp_path):
        root = tmp_path / "registry"
        ShardedStructureRegistry(root, shard_chars=3)
        reopened = ShardedStructureRegistry(root, shard_chars=1)
        assert reopened.shard_chars == 3
        with (root / MARKER_NAME).open() as handle:
            assert json.load(handle)["shard_chars"] == 3

    def test_entries_and_entry_lookup(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        key = registry.key_for(circuit, SMOKE)
        entries = registry.entries()
        assert [entry.key for entry in entries] == [key]
        assert registry.entry(key) == entries[0]
        assert registry.entry("0" * 33) is None

    def test_clear_empties_every_shard(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        registry.get_or_generate(build_chain_circuit(num_blocks=3, name="c3"), SMOKE)
        registry.clear()
        assert len(registry) == 0
        assert ShardedStructureRegistry(registry.root).keys() == []

    def test_invalid_shard_chars_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStructureRegistry(tmp_path / "r", shard_chars=0)


class TestStaleAggregates:
    """Regressions: aggregate views must see other writers' additions.

    ``fetch``/``contains`` always reloaded under lock, but ``__len__`` /
    ``keys()`` / ``entries()`` used to serve each shard's cached index —
    a second process's writes were invisible until this instance happened
    to touch the same shard through the fetch path.
    """

    def test_aggregates_see_sibling_writes_to_a_cached_shard(self, tmp_path):
        registry = ShardedStructureRegistry(tmp_path / "registry", shard_chars=1)
        circuit = build_chain_circuit()
        # Two configs whose keys share a shard, found deterministically by
        # fingerprinting (keys are stable across runs).
        by_shard = {}
        for seed in range(64):
            config = GeneratorConfig.smoke(seed=seed)
            key = registry.key_for(circuit, config)
            by_shard.setdefault(key[:1], []).append((config, key))
            if len(by_shard[key[:1]]) == 2:
                (first, first_key), (second, second_key) = by_shard[key[:1]]
                break
        else:  # pragma: no cover - 64 keys over 16 shards always collide
            pytest.fail("no two configs shared a shard")
        registry.get_or_generate(circuit, first)
        assert len(registry) == 1  # the shard's index is now cached
        sibling = ShardedStructureRegistry(registry.root, shard_chars=1)
        sibling.get_or_generate(circuit, second)
        assert len(registry) == 2
        assert set(registry.keys()) == {first_key, second_key}
        assert {entry.key for entry in registry.entries()} == {first_key, second_key}

    def test_aggregates_see_writes_from_another_process(self, tmp_path):
        root = tmp_path / "registry"
        registry = ShardedStructureRegistry(root)
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, GeneratorConfig.smoke(seed=7))
        assert len(registry) == 1
        script = textwrap.dedent(
            f"""
            from repro.circuit.builder import CircuitBuilder
            from repro.circuit.devices import DeviceType
            from repro.core.generator import GeneratorConfig
            from repro.parallel.sharding import ShardedStructureRegistry

            builder = CircuitBuilder("chain")
            for i in range(4):
                builder.block(f"m{{i}}", 4, 12, 4, 12, device_type=DeviceType.GENERIC)
            for i in range(3):
                builder.simple_net(f"n{{i}}", [f"m{{i}}", f"m{{i + 1}}"])
            registry = ShardedStructureRegistry({str(root)!r})
            registry.get_or_generate(builder.build(), GeneratorConfig.smoke(seed=8))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            cwd=os.getcwd(),
            env=env,
            timeout=120,
        )
        # The writer was a different process; this instance's aggregate
        # views must reflect its addition without an explicit reload.
        assert len(registry) == 2
        assert len(registry.keys()) == 2
        assert len(registry.entries()) == 2


class TestShardOwnerMap:
    def test_owner_assignment_is_deterministic_and_in_range(self):
        owners = ShardOwnerMap(workers=4)
        for prefix in ("00", "7f", "ff", "a3"):
            slot = owners.owner_for(prefix)
            assert 0 <= slot < 4
            assert owners.owner_for(prefix) == slot  # stable

    def test_hex_prefixes_spread_across_workers(self):
        owners = ShardOwnerMap(workers=4, shard_chars=2)
        slots = {owners.owner_for(f"{value:02x}") for value in range(256)}
        assert slots == {0, 1, 2, 3}

    def test_owner_for_key_uses_the_prefix(self):
        owners = ShardOwnerMap(workers=3, shard_chars=2)
        key = "ab" + "0" * 30
        assert owners.prefix_for(key) == "ab"
        assert owners.owner_for_key(key) == owners.owner_for("ab")

    def test_non_hex_prefix_falls_back_to_a_digest(self):
        owners = ShardOwnerMap(workers=5)
        slot = owners.owner_for("zz")
        assert 0 <= slot < 5
        assert owners.owner_for("zz") == slot

    def test_assignments_partition_keys_by_owner(self):
        owners = ShardOwnerMap(workers=2, shard_chars=1)
        keys = [f"{value:x}{'0' * 31}" for value in range(16)]
        assignments = owners.assignments(keys)
        assert sorted(key for keys in assignments.values() for key in keys) == sorted(
            keys
        )
        for slot, slot_keys in assignments.items():
            assert all(owners.owner_for_key(key) == slot for key in slot_keys)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardOwnerMap(workers=0)
        with pytest.raises(ValueError):
            ShardOwnerMap(workers=2, shard_chars=0)


class TestOpenRegistry:
    def test_fresh_root_defaults_to_flat(self, tmp_path):
        assert isinstance(open_registry(tmp_path / "fresh"), StructureRegistry)

    def test_fresh_root_sharded_on_request(self, tmp_path):
        assert isinstance(
            open_registry(tmp_path / "fresh", sharded=True), ShardedStructureRegistry
        )

    def test_existing_layouts_autodetected(self, tmp_path, generated_chain_structure):
        flat_root = tmp_path / "flat"
        StructureRegistry(flat_root).put(generated_chain_structure, SMOKE)
        sharded_root = tmp_path / "sharded"
        ShardedStructureRegistry(sharded_root)
        assert isinstance(open_registry(flat_root), StructureRegistry)
        assert isinstance(open_registry(sharded_root), ShardedStructureRegistry)

    def test_layout_conflicts_raise(self, tmp_path, generated_chain_structure):
        flat_root = tmp_path / "flat"
        StructureRegistry(flat_root).put(generated_chain_structure, SMOKE)
        with pytest.raises(ValueError):
            open_registry(flat_root, sharded=True)
        sharded_root = tmp_path / "sharded"
        ShardedStructureRegistry(sharded_root)
        with pytest.raises(ValueError):
            open_registry(sharded_root, sharded=False)


class TestAdvisoryLock:
    def test_lock_creates_file_and_releases(self, tmp_path):
        lock_path = tmp_path / "locks" / "key.lock"
        with advisory_lock(lock_path):
            assert lock_path.exists()
        # Re-acquirable after release (same process).
        with advisory_lock(lock_path):
            pass

    def test_reap_temp_files_across_shards(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        key = registry.key_for(circuit, SMOKE)
        shard_dir = registry.root / key[: registry.shard_chars]
        stale = shard_dir / ".victim.json.abc.tmp"
        stale.write_text("{}")
        import os

        os.utime(stale, (0, 0))  # pretend the writer died long ago
        reaped = registry.reap_temp_files()
        assert stale in reaped
        assert not stale.exists()
