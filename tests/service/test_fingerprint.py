"""Tests for canonical topology fingerprints."""

from dataclasses import replace

from repro.benchcircuits.library import get_benchmark
from repro.circuit.builder import CircuitBuilder
from repro.circuit.devices import DeviceType
from repro.core.generator import GeneratorConfig
from repro.service.fingerprint import (
    KEY_DIGEST_CHARS,
    canonical_circuit_dict,
    circuit_fingerprint,
    config_fingerprint,
    structure_key,
)


def build_pair_circuit(name="pair", block_order=("a", "b"), net_order=("n1", "n2")):
    """A 2-block circuit whose declaration order is controlled by the caller."""
    specs = {
        "a": dict(min_w=4, max_w=8, min_h=4, max_h=8, device_type=DeviceType.NMOS),
        "b": dict(min_w=5, max_w=9, min_h=5, max_h=9, device_type=DeviceType.PMOS),
    }
    nets = {
        "n1": dict(attachments=[("a", "c"), ("b", "c")]),
        "n2": dict(attachments=[("a", "c")], external=True, io_position=(0.0, 0.25)),
    }
    builder = CircuitBuilder(name)
    for block_name in block_order:
        builder.block(block_name, **specs[block_name])
    for net_name in net_order:
        spec = nets[net_name]
        builder.net(
            net_name,
            *spec["attachments"],
            external=spec.get("external", False),
            io_position=spec.get("io_position", (0.0, 0.5)),
        )
    return builder.build()


class TestCircuitFingerprint:
    def test_declaration_order_is_irrelevant(self):
        forward = build_pair_circuit()
        backward = build_pair_circuit(block_order=("b", "a"), net_order=("n2", "n1"))
        assert canonical_circuit_dict(forward) == canonical_circuit_dict(backward)
        assert circuit_fingerprint(forward) == circuit_fingerprint(backward)

    def test_name_excluded_by_default(self):
        assert circuit_fingerprint(build_pair_circuit("x")) == circuit_fingerprint(
            build_pair_circuit("y")
        )
        assert circuit_fingerprint(
            build_pair_circuit("x"), include_name=True
        ) != circuit_fingerprint(build_pair_circuit("y"), include_name=True)

    def test_topology_changes_change_the_hash(self):
        base = circuit_fingerprint(build_pair_circuit())
        bigger = build_pair_circuit()
        bigger.blocks[0].max_w += 1
        assert circuit_fingerprint(bigger) != base

    def test_net_weight_changes_change_the_hash(self):
        light = build_pair_circuit()
        heavy = build_pair_circuit()
        heavy.nets[0] = heavy.nets[0].with_weight(3.0)
        assert circuit_fingerprint(light) != circuit_fingerprint(heavy)

    def test_benchmarks_have_distinct_fingerprints(self):
        names = ["circ01", "two_stage_opamp", "mixer", "tso_cascode"]
        prints = {circuit_fingerprint(get_benchmark(name)) for name in names}
        assert len(prints) == len(names)

    def test_fingerprint_is_stable_across_calls(self):
        circuit = get_benchmark("two_stage_opamp")
        assert circuit_fingerprint(circuit) == circuit_fingerprint(circuit)


class TestConfigFingerprint:
    def test_none_and_default_config_differ(self):
        assert config_fingerprint(None) != config_fingerprint(GeneratorConfig())

    def test_equal_configs_hash_equal(self):
        assert config_fingerprint(GeneratorConfig.smoke(seed=1)) == config_fingerprint(
            GeneratorConfig.smoke(seed=1)
        )

    def test_seed_is_part_of_the_identity(self):
        assert config_fingerprint(GeneratorConfig.smoke(seed=1)) != config_fingerprint(
            GeneratorConfig.smoke(seed=2)
        )

    def test_nested_budget_changes_are_seen(self):
        config = GeneratorConfig.smoke(seed=0)
        scaled = replace(config, explorer=replace(config.explorer, max_iterations=99))
        assert config_fingerprint(config) != config_fingerprint(scaled)

    def test_plain_mappings_are_accepted(self):
        assert config_fingerprint({"a": 1}) == config_fingerprint({"a": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


class TestStructureKey:
    def test_key_shape(self):
        key = structure_key(build_pair_circuit(), GeneratorConfig.smoke(seed=0))
        circuit_part, config_part = key.split("-")
        assert len(circuit_part) == KEY_DIGEST_CHARS
        assert len(config_part) == KEY_DIGEST_CHARS

    def test_key_separates_configs_not_names(self):
        first = build_pair_circuit("x")
        second = build_pair_circuit("y")
        config = GeneratorConfig.smoke(seed=0)
        assert structure_key(first, config) == structure_key(second, config)
        assert structure_key(first, config) != structure_key(
            first, GeneratorConfig.smoke(seed=5)
        )
