"""Tests for the LRU cache and the memoizing instantiator."""

import pytest

from repro.core.instantiator import PlacementInstantiator
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from repro.service.cache import LRUCache, MemoizingInstantiator
from tests.conftest import build_chain_circuit


def build_structure():
    circuit = build_chain_circuit(2)
    structure = MultiPlacementStructure(circuit, FloorplanBounds(60, 60))
    structure.add_placement(
        anchors=[(0, 0), (10, 0)],
        ranges=[
            DimensionRange(Interval(4, 8), Interval(4, 8)),
            DimensionRange(Interval(4, 8), Interval(4, 8)),
        ],
        average_cost=10.0,
        best_cost=9.0,
    )
    structure.set_fallback([(0, 30), (25, 30)])
    return structure


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_and_contains(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        assert cache.get("a", default=5) == 5
        cache.put("a", 1)
        assert "a" in cache
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_least_recently_used_is_evicted(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_put_existing_key_updates_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == 10
        assert "b" in cache
        assert cache.stats.evictions == 0

    def test_stats_track_hits_and_misses(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.requests == 2
        assert set(cache.stats.as_dict()) == {"hits", "misses", "evictions", "hit_rate"}

    def test_keys_in_lru_order_and_clear(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ("b", "a")
        cache.clear()
        assert len(cache) == 0


class TestMemoizingInstantiator:
    def test_repeated_query_returns_the_memoized_object(self):
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()))
        first = memo.instantiate([(5, 5), (6, 6)])
        second, from_memo = memo.instantiate_with_info([(5, 5), (6, 6)])
        assert from_memo
        assert second is first
        assert memo.memo_stats.hits == 1
        assert memo.memo_stats.misses == 1

    def test_results_match_the_plain_instantiator(self):
        plain = PlacementInstantiator(build_structure())
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()))
        for dims in ([(5, 5), (6, 6)], [(10, 10), (10, 10)], [(12, 12), (12, 12)]):
            expected = plain.instantiate(dims)
            got = memo.instantiate(dims)
            assert got.source == expected.source
            assert dict(got.rects) == dict(expected.rects)

    def test_clamping_shares_entries(self):
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()))
        # (1, 1) and (100, 100) clamp to (4, 4) and (12, 12) respectively.
        a = memo.instantiate([(1, 1), (5, 5)])
        b, from_memo = memo.instantiate_with_info([(4, 4), (5, 5)])
        assert from_memo
        assert b is a

    def test_bounded_memo_evicts(self):
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()), capacity=2)
        memo.instantiate([(4, 4), (4, 4)])
        memo.instantiate([(5, 5), (5, 5)])
        memo.instantiate([(6, 6), (6, 6)])
        assert memo.memo_stats.evictions == 1
        _, from_memo = memo.instantiate_with_info([(4, 4), (4, 4)])
        assert not from_memo

    def test_clear_drops_entries(self):
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()))
        memo.instantiate([(5, 5), (5, 5)])
        memo.clear()
        _, from_memo = memo.instantiate_with_info([(5, 5), (5, 5)])
        assert not from_memo

    def test_structure_property_is_passed_through(self):
        structure = build_structure()
        memo = MemoizingInstantiator(PlacementInstantiator(structure))
        assert memo.structure is structure
        assert memo.instantiator.structure is structure
