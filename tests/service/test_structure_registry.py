"""Tests for the on-disk structure registry."""

import json

import pytest

from repro.core.generator import GeneratorConfig
from repro.service.registry import INDEX_NAME, StructureRegistry
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)


@pytest.fixture
def registry(tmp_path):
    return StructureRegistry(tmp_path / "registry")


class TestGetOrGenerate:
    def test_generates_on_first_sight_then_loads(self, registry):
        circuit = build_chain_circuit()
        assert not registry.contains(circuit, SMOKE)
        first = registry.get_or_generate(circuit, SMOKE)
        assert registry.contains(circuit, SMOKE)
        assert registry.stats.generations == 1
        second = registry.get_or_generate(circuit, SMOKE)
        assert registry.stats.generations == 1
        assert registry.stats.loads == 1
        assert second.num_placements == first.num_placements
        assert second.fallback_anchors == first.fallback_anchors

    def test_fetch_reports_the_outcome(self, registry):
        circuit = build_chain_circuit()
        _, generated = registry.fetch(circuit, SMOKE)
        assert generated
        _, generated = registry.fetch(circuit, SMOKE)
        assert not generated

    def test_configs_occupy_separate_slots(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        registry.get_or_generate(circuit, GeneratorConfig.smoke(seed=8))
        assert len(registry) == 2

    def test_none_and_default_config_share_a_slot(self, registry):
        circuit = build_chain_circuit()
        assert registry.key_for(circuit, None) == registry.key_for(circuit, GeneratorConfig())

    def test_persists_across_instances(self, registry):
        circuit = build_chain_circuit()
        registry.get_or_generate(circuit, SMOKE)
        reopened = StructureRegistry(registry.root)
        assert len(reopened) == 1
        assert reopened.contains(circuit, SMOKE)
        loaded = reopened.get_or_generate(circuit, SMOKE)
        assert reopened.stats.generations == 0
        assert loaded.num_placements > 0


class TestPutGet:
    def test_get_returns_none_when_absent(self, registry):
        assert registry.get(build_chain_circuit(), SMOKE) is None

    def test_put_indexes_and_saves(self, registry, generated_chain_structure):
        entry = registry.put(generated_chain_structure, SMOKE)
        assert (registry.root / entry.filename).exists()
        assert entry.num_placements == generated_chain_structure.num_placements
        assert entry.num_blocks == generated_chain_structure.circuit.num_blocks
        assert registry.keys() == [entry.key]
        assert registry.entry(entry.key) == entry
        loaded = registry.get(generated_chain_structure.circuit, SMOKE)
        assert loaded.num_placements == generated_chain_structure.num_placements

    def test_put_replaces_existing_slot(self, registry, generated_chain_structure):
        registry.put(generated_chain_structure, SMOKE)
        registry.put(generated_chain_structure, SMOKE)
        assert len(registry) == 1

    def test_clear_removes_files_and_entries(self, registry, generated_chain_structure):
        entry = registry.put(generated_chain_structure, SMOKE)
        registry.clear()
        assert len(registry) == 0
        assert not (registry.root / entry.filename).exists()
        assert StructureRegistry(registry.root).keys() == []


class TestDurability:
    def test_no_temp_files_left_behind(self, registry, generated_chain_structure):
        registry.put(generated_chain_structure, SMOKE)
        leftovers = [p for p in registry.root.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_index_is_valid_json_after_every_write(self, registry, generated_chain_structure):
        registry.put(generated_chain_structure, SMOKE)
        with (registry.root / INDEX_NAME).open() as handle:
            data = json.load(handle)
        assert data["format_version"] == 1
        assert len(data["entries"]) == 1

    def test_concurrent_writers_do_not_lose_entries(self, registry, generated_chain_structure):
        # Two registry instances share one directory; each indexes its own
        # structure without having seen the other's write.
        other = StructureRegistry(registry.root)
        registry.put(generated_chain_structure, SMOKE)
        other.put(generated_chain_structure, GeneratorConfig.smoke(seed=99))
        reopened = StructureRegistry(registry.root)
        assert len(reopened) == 2

    def test_unsupported_index_version_rejected(self, tmp_path):
        root = tmp_path / "registry"
        root.mkdir()
        (root / INDEX_NAME).write_text(json.dumps({"format_version": 99, "entries": []}))
        with pytest.raises(ValueError):
            StructureRegistry(root)

    def test_reload_picks_up_sibling_writes(self, registry, generated_chain_structure):
        sibling = StructureRegistry(registry.root)
        sibling.put(generated_chain_structure, SMOKE)
        # The first instance read the index before the sibling's write...
        assert len(registry) == 0
        registry.reload()
        assert len(registry) == 1


class TestTempFileReaping:
    """A writer killed between mkstemp and os.replace leaks a ``*.tmp`` file."""

    def test_stale_temp_files_reaped_on_open(self, tmp_path):
        import os

        root = tmp_path / "registry"
        root.mkdir()
        stale = root / ".victim.json.abc123.tmp"
        stale.write_text('{"partial": ')
        os.utime(stale, (0, 0))  # crashed long ago
        registry = StructureRegistry(root)
        assert not stale.exists()
        assert len(registry) == 0  # and it never shows up as an entry

    def test_fresh_temp_files_survive(self, tmp_path):
        # A young temp file may belong to a write in flight in another
        # process; reaping it would break that writer's os.replace.
        root = tmp_path / "registry"
        root.mkdir()
        fresh = root / ".victim.json.def456.tmp"
        fresh.write_text('{"partial": ')
        StructureRegistry(root)
        assert fresh.exists()

    def test_explicit_reap_with_zero_age(self, tmp_path):
        root = tmp_path / "registry"
        registry = StructureRegistry(root)
        fresh = root / ".victim.json.xyz.tmp"
        fresh.write_text('{"partial": ')
        reaped = registry.reap_temp_files(max_age_seconds=0.0)
        assert fresh in reaped
        assert not fresh.exists()

    def test_interrupted_save_structure_cleans_up(self, tmp_path, generated_chain_structure, monkeypatch):
        # Force the final rename to fail: the temp file must not survive.
        from repro.core import serialization

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(serialization.os, "replace", boom)
        target = tmp_path / "structure.json"
        with pytest.raises(OSError):
            serialization.save_structure(generated_chain_structure, target)
        monkeypatch.undo()
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert not target.exists()
