"""Tests for batched instantiation with deduplication and fan-out."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.instantiator import PlacementInstantiator
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from repro.service.batch import instantiate_batch
from repro.service.cache import MemoizingInstantiator
from tests.conftest import build_chain_circuit


def build_structure(num_blocks=2):
    circuit = build_chain_circuit(num_blocks)
    structure = MultiPlacementStructure(circuit, FloorplanBounds(40 * num_blocks, 60))
    structure.add_placement(
        anchors=[(14 * i, 0) for i in range(num_blocks)],
        ranges=[DimensionRange(Interval(4, 8), Interval(4, 8)) for _ in range(num_blocks)],
        average_cost=10.0,
        best_cost=9.0,
    )
    structure.set_fallback([(14 * i, 30) for i in range(num_blocks)])
    return structure


def all_dims(num_blocks, w, h):
    return [(w, h)] * num_blocks


class TestDeduplication:
    def test_duplicates_are_instantiated_once_and_shared(self):
        instantiator = PlacementInstantiator(build_structure())
        batch = [all_dims(2, 5, 5), all_dims(2, 6, 6), all_dims(2, 5, 5)]
        result = instantiate_batch(instantiator, batch)
        assert result.total_queries == 3
        assert result.unique_queries == 2
        assert result.duplicate_queries == 1
        assert result[0] is result[2]
        assert result[0] is not result[1]

    def test_clamped_duplicates_collapse(self):
        instantiator = PlacementInstantiator(build_structure())
        # (1, 1) clamps to the block minimum (4, 4).
        result = instantiate_batch(instantiator, [all_dims(2, 1, 1), all_dims(2, 4, 4)])
        assert result.unique_queries == 1

    def test_source_counts_cover_every_query(self):
        instantiator = PlacementInstantiator(build_structure())
        batch = [all_dims(2, 5, 5)] * 3 + [all_dims(2, 10, 10)] * 2
        result = instantiate_batch(instantiator, batch)
        assert sum(result.source_counts.values()) == 5
        assert result.source_counts["structure"] == 3

    def test_empty_batch(self):
        instantiator = PlacementInstantiator(build_structure())
        result = instantiate_batch(instantiator, [])
        assert result.total_queries == 0
        assert result.unique_queries == 0
        assert list(result) == []

    def test_wrong_length_vector_rejected(self):
        instantiator = PlacementInstantiator(build_structure())
        with pytest.raises(ValueError):
            instantiate_batch(instantiator, [all_dims(2, 5, 5), [(5, 5)]])
        with pytest.raises(ValueError):
            instantiate_batch(instantiator, [all_dims(3, 5, 5)])


class TestResultsMatchSequential:
    def test_results_in_input_order(self):
        instantiator = PlacementInstantiator(build_structure())
        batch = [all_dims(2, w, w) for w in (5, 6, 7, 5, 12, 6)]
        result = instantiate_batch(instantiator, batch)
        for dims, got in zip(batch, result):
            expected = instantiator.instantiate(dims)
            assert got.source == expected.source
            assert dict(got.rects) == dict(expected.rects)

    def test_memoizing_instantiator_is_supported(self):
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()))
        batch = [all_dims(2, 5, 5), all_dims(2, 5, 5), all_dims(2, 6, 6)]
        result = instantiate_batch(memo, batch)
        assert result.unique_queries == 2
        # A second batch is answered entirely from the memo.
        hits_before = memo.memo_stats.hits
        instantiate_batch(memo, batch)
        assert memo.memo_stats.hits == hits_before + 2


class TestParallelism:
    def test_worker_pool_matches_serial(self):
        structure = build_structure(4)
        instantiator = PlacementInstantiator(structure)
        batch = [all_dims(4, 4 + (i % 9), 4 + ((i * 3) % 9)) for i in range(24)]
        serial = instantiate_batch(instantiator, batch)
        parallel = instantiate_batch(instantiator, batch, max_workers=4)
        assert serial.unique_queries == parallel.unique_queries
        for a, b in zip(serial, parallel):
            assert a.source == b.source
            assert dict(a.rects) == dict(b.rects)

    def test_external_executor_is_used_and_left_running(self):
        instantiator = PlacementInstantiator(build_structure())
        with ThreadPoolExecutor(max_workers=2) as pool:
            result = instantiate_batch(
                instantiator, [all_dims(2, 5, 5), all_dims(2, 6, 6)], executor=pool
            )
            assert result.total_queries == 2
            # The pool must still accept work after the batch call.
            assert pool.submit(lambda: 42).result() == 42

    def test_small_batches_stay_serial(self):
        instantiator = PlacementInstantiator(build_structure())
        result = instantiate_batch(instantiator, [all_dims(2, 5, 5)], max_workers=8)
        assert result.total_queries == 1


class TestBatchResult:
    def test_throughput_and_container_protocol(self):
        instantiator = PlacementInstantiator(build_structure())
        result = instantiate_batch(instantiator, [all_dims(2, 5, 5), all_dims(2, 6, 6)])
        assert len(result) == 2
        assert result.elapsed_seconds >= 0.0
        assert result.queries_per_second >= 0.0
        assert [r.source for r in result] == [result[0].source, result[1].source]


class TestVectorizedBatchPath:
    def test_serial_batch_matches_scalar_loop(self, monkeypatch):
        pytest.importorskip("numpy")
        batch = [all_dims(4, 4 + (i % 9), 4 + ((i * 3) % 9)) for i in range(24)]
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        scalar = instantiate_batch(PlacementInstantiator(build_structure(4)), batch)
        monkeypatch.delenv("REPRO_VECTORIZE")
        instantiator = PlacementInstantiator(build_structure(4))
        vectorized = instantiate_batch(instantiator, batch)
        assert instantiator.vector_stats()["batch_evals"] >= 1
        assert scalar.unique_queries == vectorized.unique_queries
        assert scalar.source_counts == vectorized.source_counts
        for a, b in zip(scalar, vectorized):
            assert a.source == b.source
            assert a.cost == b.cost
            assert dict(a.rects) == dict(b.rects)

    def test_memoizing_batch_uses_vector_path(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        memo = MemoizingInstantiator(PlacementInstantiator(build_structure()))
        assert memo.vector_ready()
        batch = [all_dims(2, 5, 5), all_dims(2, 6, 6), all_dims(2, 5, 5)]
        first = instantiate_batch(memo, batch)
        assert memo.vector_stats()["batch_evals"] >= 1
        sweeps = memo.vector_stats()["batch_evals"]
        # Replaying the batch answers from the memo table: no new sweep.
        again = instantiate_batch(memo, batch)
        assert memo.vector_stats()["batch_evals"] == sweeps
        for a, b in zip(first, again):
            assert a is b
