"""Tests for the PlacementService facade and its statistics."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.core.generator import GeneratorConfig
from repro.core.instantiator import (
    SOURCE_FALLBACK,
    SOURCE_NEAREST,
    SOURCE_STRUCTURE,
)
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.geometry.floorplan import FloorplanBounds
from repro.service.engine import PlacementService, ServiceStats
from repro.service.registry import StructureRegistry
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)

#: Hand-built structure queries with a known tier for each (see build_structure).
IN_BOX = [(5, 5), (6, 6)]
OUT_OF_BOX_LEGAL = [(10, 10), (10, 10)]
OUT_OF_BOX_ILLEGAL = [(12, 12), (12, 12)]


def build_structure(circuit=None):
    circuit = circuit or build_chain_circuit(2)
    structure = MultiPlacementStructure(circuit, FloorplanBounds(60, 60))
    structure.add_placement(
        anchors=[(0, 0), (10, 0)],
        ranges=[
            DimensionRange(Interval(4, 8), Interval(4, 8)),
            DimensionRange(Interval(4, 8), Interval(4, 8)),
        ],
        average_cost=10.0,
        best_cost=9.0,
    )
    structure.set_fallback([(0, 30), (25, 30)])
    return structure


@pytest.fixture
def service(tmp_path):
    registry = StructureRegistry(tmp_path / "registry")
    registry.put(build_structure())
    return PlacementService(registry)


class TestServing:
    def test_serves_from_the_registry(self, service):
        result = service.instantiate(build_chain_circuit(2), IN_BOX)
        assert result.source == SOURCE_STRUCTURE
        assert service.stats.structures_loaded == 1
        assert service.stats.structures_generated == 0

    def test_generates_in_memory_without_registry(self):
        service = PlacementService(default_config=SMOKE)
        circuit = build_chain_circuit()
        result = service.instantiate(circuit, [(5, 5)] * 4)
        assert len(result.rects) == 4
        assert service.stats.structures_generated == 1

    def test_generates_through_the_registry_on_miss(self, tmp_path):
        registry = StructureRegistry(tmp_path / "registry")
        service = PlacementService(registry, default_config=SMOKE)
        service.warm(build_chain_circuit())
        assert service.stats.structures_generated == 1
        assert registry.contains(build_chain_circuit(), SMOKE)

    def test_instantiator_cache_hits_on_repeat(self, service):
        circuit = build_chain_circuit(2)
        service.instantiate(circuit, IN_BOX)
        service.instantiate(circuit, OUT_OF_BOX_LEGAL)
        assert service.stats.cache_misses == 1
        assert service.stats.cache_hits == 1

    def test_warm_returns_the_structure(self, service):
        structure = service.warm(build_chain_circuit(2))
        assert structure.num_placements == 1


class TestTierStats:
    def test_mixed_workload_reports_per_tier_counts(self, service):
        circuit = build_chain_circuit(2)
        for _ in range(3):
            service.instantiate(circuit, IN_BOX)
        for _ in range(2):
            service.instantiate(circuit, OUT_OF_BOX_LEGAL)
        service.instantiate(circuit, OUT_OF_BOX_ILLEGAL)
        stats = service.stats
        assert stats.queries == 6
        assert stats.structure_hits == 3
        assert stats.nearest_hits == 2
        assert stats.fallback_hits == 1
        assert stats.tier_counts == {
            SOURCE_STRUCTURE: 3,
            SOURCE_NEAREST: 2,
            SOURCE_FALLBACK: 1,
        }
        assert stats.structure_hit_rate == pytest.approx(0.5)
        assert stats.memo_hits == 3  # every repeat after the first of each vector
        assert stats.total_seconds > 0.0
        assert stats.mean_latency_seconds > 0.0

    def test_batch_updates_tier_and_dedup_counters(self, service):
        circuit = build_chain_circuit(2)
        batch = [IN_BOX] * 4 + [OUT_OF_BOX_LEGAL] * 3 + [OUT_OF_BOX_ILLEGAL]
        result = service.instantiate_batch(circuit, batch)
        assert result.total_queries == 8
        assert result.unique_queries == 3
        stats = service.stats
        assert stats.batches == 1
        assert stats.queries == 8
        assert stats.dedup_hits == 5
        assert stats.structure_hits == 4
        assert stats.nearest_hits == 3
        assert stats.fallback_hits == 1

    def test_snapshot_is_independent(self, service):
        circuit = build_chain_circuit(2)
        service.instantiate(circuit, IN_BOX)
        frozen = service.stats.snapshot()
        service.instantiate(circuit, IN_BOX)
        assert frozen.queries == 1
        assert service.stats.queries == 2

    def test_reset_returns_old_counters(self, service):
        circuit = build_chain_circuit(2)
        service.instantiate(circuit, IN_BOX)
        old = service.reset_stats()
        assert old.queries == 1
        assert service.stats.queries == 0

    def test_record_source_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            ServiceStats().record_source("teleport")

    def test_as_dict_includes_rates(self, service):
        service.instantiate(build_chain_circuit(2), IN_BOX)
        data = service.stats.as_dict()
        assert data["queries"] == 1
        assert 0.0 <= data["structure_hit_rate"] <= 1.0
        assert data["mean_latency_seconds"] >= 0.0


class TestBlockOrderIndependence:
    def build_ab_circuit(self, order):
        builder = CircuitBuilder("ab")
        specs = {"a": (4, 8, 4, 8), "b": (5, 9, 5, 9)}
        for name in order:
            builder.block(name, *specs[name])
        builder.simple_net("n1", ["a", "b"])
        return builder.build()

    def test_permuted_caller_gets_correctly_mapped_dims(self, tmp_path):
        canonical = self.build_ab_circuit(["a", "b"])
        structure = MultiPlacementStructure(canonical, FloorplanBounds(60, 60))
        structure.set_fallback([(0, 0), (20, 0)])
        registry = StructureRegistry(tmp_path / "registry")
        registry.put(structure)
        service = PlacementService(registry)

        permuted = self.build_ab_circuit(["b", "a"])
        # Caller order is (b, a): b gets 9x9, a gets 5x5.
        result = service.instantiate(permuted, [(9, 9), (5, 5)])
        assert (result.rects["a"].w, result.rects["a"].h) == (5, 5)
        assert (result.rects["b"].w, result.rects["b"].h) == (9, 9)
        # Both declarations share one registry slot.
        assert service.registry.keys() == [service.registry.key_for(canonical)]

    def test_dimension_vector_length_is_validated(self, service):
        with pytest.raises(ValueError):
            service.instantiate(build_chain_circuit(2), [(5, 5)])


class TestVectorEvalStats:
    def test_batch_records_vector_counters(self, service, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        circuit = build_chain_circuit(2)
        batch = [IN_BOX] * 2 + [OUT_OF_BOX_LEGAL] * 2 + [[(7, 7), (7, 7)]]
        service.instantiate_batch(circuit, batch)
        stats = service.stats
        assert stats.batch_evals >= 1
        assert stats.batch_candidates >= stats.batch_evals
        assert stats.vector_fallbacks == 0
        as_dict = stats.as_dict()
        assert as_dict["batch_evals"] == stats.batch_evals
        assert as_dict["batch_candidates"] == stats.batch_candidates

    def test_env_gate_records_fallback(self, service, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        circuit = build_chain_circuit(2)
        service.instantiate_batch(circuit, [IN_BOX, OUT_OF_BOX_LEGAL, [(7, 7), (7, 7)]])
        stats = service.stats
        assert stats.batch_evals == 0
        assert stats.vector_fallbacks == 1

    def test_results_identical_with_and_without_vectorization(
        self, tmp_path, monkeypatch
    ):
        pytest.importorskip("numpy")
        circuit = build_chain_circuit(2)
        batch = [IN_BOX, OUT_OF_BOX_LEGAL, OUT_OF_BOX_ILLEGAL, [(7, 7), (7, 7)]]

        def serve(env_value):
            if env_value is None:
                monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
            else:
                monkeypatch.setenv("REPRO_VECTORIZE", env_value)
            registry = StructureRegistry(tmp_path / f"registry-{env_value}")
            registry.put(build_structure())
            return PlacementService(registry).instantiate_batch(circuit, batch)

        scalar = serve("0")
        vectorized = serve(None)
        assert scalar.source_counts == vectorized.source_counts
        for a, b in zip(scalar, vectorized):
            assert a.cost == b.cost
            assert dict(a.rects) == dict(b.rects)
