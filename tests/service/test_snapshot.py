"""Consistency tests for PlacementService.snapshot().

The service updates its counters in atomic groups under one lock — a
query increments ``queries`` *and* its tier counter together.  A
consistent snapshot must never observe the halfway state, no matter how
hard other threads are driving the service.
"""

import threading

from repro.core.generator import GeneratorConfig
from repro.service.engine import PlacementService, ServiceStats
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)


def tier_sum(stats: ServiceStats) -> int:
    return stats.structure_hits + stats.nearest_hits + stats.fallback_hits


class TestSnapshot:
    def test_snapshot_is_a_frozen_copy(self):
        service = PlacementService(default_config=SMOKE)
        circuit = build_chain_circuit()
        service.instantiate(circuit, [(5, 5)] * 4)
        frozen = service.snapshot()
        assert frozen.queries == 1
        service.instantiate(circuit, [(6, 6)] * 4)
        # The copy does not move with the live counters.
        assert frozen.queries == 1
        assert service.stats.queries == 2

    def test_snapshot_mirrors_as_dict(self):
        service = PlacementService(default_config=SMOKE)
        service.instantiate(build_chain_circuit(), [(5, 5)] * 4)
        assert service.snapshot().as_dict() == service.stats.as_dict()

    def test_snapshot_never_tears_under_concurrent_queries(self):
        service = PlacementService(default_config=SMOKE)
        circuit = build_chain_circuit()
        service.warm(circuit)  # pay generation once, outside the race
        stop = threading.Event()
        errors = []

        def hammer(seed):
            sizes = [(4 + (seed + i) % 9, 4 + (seed * 3 + i) % 9) for i in range(8)]
            index = 0
            while not stop.is_set():
                service.instantiate(circuit, [sizes[index % 8]] * 4)
                index += 1

        def observe():
            while not stop.is_set():
                frozen = service.snapshot()
                # The atomic group: queries and the tier counter move
                # together, so a consistent view always balances.
                if frozen.queries != tier_sum(frozen):
                    errors.append(
                        f"torn snapshot: queries={frozen.queries} "
                        f"tiers={tier_sum(frozen)}"
                    )
                    stop.set()

        writers = [threading.Thread(target=hammer, args=(seed,)) for seed in range(4)]
        readers = [threading.Thread(target=observe) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        stop.wait(timeout=1.5)
        stop.set()
        for thread in writers + readers:
            thread.join(timeout=30.0)
        assert errors == []
        final = service.snapshot()
        assert final.queries == tier_sum(final)
        assert final.queries > 0
