"""Trace-context propagation through a pickled pool job spec.

The process pool ships :class:`PlacementJob` specs to workers by pickle
(fork *and* spawn start methods).  The trace context rides inside the
spec, so it must survive the round trip byte-exactly — and stay ``None``
(spec bytes untouched) when tracing is off.
"""

import dataclasses
import os
import pickle

from repro import obs
from repro.core.serialization import circuit_to_dict
from repro.parallel.jobs import make_placement_jobs, run_placement_job
from tests.conftest import build_chain_circuit

SPEC = {"kind": "template"}


def make_jobs(num_jobs=2):
    circuit_data = circuit_to_dict(build_chain_circuit())
    queries = [[(6, 5), (5, 6), (7, 5), (6, 6)] for _ in range(4)]
    return make_placement_jobs(circuit_data, SPEC, queries, num_jobs)


class TestTraceContextPickling:
    def test_untraced_jobs_carry_no_context(self):
        for job in make_jobs():
            assert job.trace is None
            clone = pickle.loads(pickle.dumps(job))
            assert clone.trace is None

    def test_trace_context_survives_a_pickle_round_trip(self):
        obs.configure(enabled=True)
        with obs.span("coordinator.batch") as live:
            jobs = make_jobs()
        for job in jobs:
            assert job.trace is not None
            trace_id, parent_id, origin_pid, submitted = job.trace
            assert trace_id == live.trace_id
            assert parent_id == live.span_id
            assert origin_pid == os.getpid()
            assert submitted > 0.0
            clone = pickle.loads(pickle.dumps(job))
            assert clone.trace == job.trace
            assert clone == job  # frozen dataclass: full spec equality

    def test_pickled_job_reparents_like_the_original(self):
        """Running the *unpickled* clone in a simulated worker re-parents
        its spans under the coordinator span named by the context."""
        obs.configure(enabled=True)
        with obs.span("coordinator.batch") as live:
            (job,) = make_jobs(num_jobs=1)
        clone = pickle.loads(pickle.dumps(job))
        # Simulate crossing a process boundary: remote_span_capture only
        # engages when the origin pid differs from the executing pid.
        foreign = dataclasses.replace(
            clone,
            trace=(clone.trace[0], clone.trace[1], clone.trace[2] + 1, clone.trace[3]),
        )
        result = run_placement_job(foreign)
        assert result.spans, "foreign jobs must capture their spans for ingestion"
        job_spans = [r for r in result.spans if r["name"] == "worker.job"]
        assert len(job_spans) == 1
        assert job_spans[0]["trace_id"] == live.trace_id
        assert job_spans[0]["parent_id"] == live.span_id
        # The queue-latency attribute derives from the submitted timestamp
        # that rode the pickled spec.
        assert "queue_seconds" in job_spans[0]["attrs"]

    def test_results_identical_with_and_without_trace_context(self):
        (untraced,) = make_jobs(num_jobs=1)
        obs.configure(enabled=True)
        with obs.span("coordinator.batch"):
            (traced,) = make_jobs(num_jobs=1)
        obs.reset()  # disable tracing again before running either job
        baseline = run_placement_job(untraced)
        shadowed = run_placement_job(traced)
        assert [dict(p.rects) for p in baseline.results] == [
            dict(p.rects) for p in shadowed.results
        ]
