"""Tests for the metrics registry: counters, gauges, histograms, export."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_time_buckets,
)


class TestCounterAndGauge:
    def test_counter_increments_and_sets(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        counter.set(7)
        assert counter.value == 7.0

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0


class TestHistogram:
    def test_default_buckets_are_ascending_and_span_the_ladder(self):
        bounds = default_time_buckets()
        assert list(bounds) == sorted(bounds)
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] < 200.0 <= bounds[-1] * 10 ** 0.25 * 1.01

    def test_tracks_count_sum_min_max(self):
        histogram = Histogram("h")
        for value in (0.001, 0.010, 0.100):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.111)
        assert histogram.minimum == pytest.approx(0.001)
        assert histogram.maximum == pytest.approx(0.100)
        assert histogram.mean == pytest.approx(0.111 / 3)

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(0.05)
        assert histogram.quantile(0.0) == pytest.approx(0.05)
        assert histogram.quantile(0.5) == pytest.approx(0.05, rel=0.8)
        assert histogram.quantile(1.0) == pytest.approx(0.05)
        # Every estimate stays inside [min, max].
        for q in (0.1, 0.25, 0.5, 0.9, 0.99):
            assert histogram.minimum <= histogram.quantile(q) <= histogram.maximum

    def test_quantile_orders_correctly_across_decades(self):
        histogram = Histogram("h")
        for _ in range(90):
            histogram.observe(0.001)
        for _ in range(10):
            histogram.observe(1.0)
        assert histogram.quantile(0.5) < 0.01
        assert histogram.quantile(0.99) > 0.1

    def test_empty_histogram_snapshot_is_zeros(self):
        snapshot = Histogram("h").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] == 0.0
        assert snapshot["max"] == 0.0
        assert snapshot["p99"] == 0.0

    def test_overflow_bucket_catches_huge_values(self):
        histogram = Histogram("h", buckets=[1.0, 2.0])
        histogram.observe(1000.0)
        pairs = histogram.bucket_counts()
        assert pairs[-1] == (math.inf, 1)
        assert pairs[0] == (1.0, 0)

    def test_bucket_counts_are_cumulative(self):
        histogram = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        assert histogram.bucket_counts() == [
            (1.0, 1),
            (2.0, 2),
            (4.0, 4),
            (math.inf, 4),
        ]

    def test_rejects_bad_buckets_and_quantiles(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_quantile_of_empty_histogram_is_zero(self):
        histogram = Histogram("h")
        for q in (0.0, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_quantile_of_single_sample_is_that_sample(self):
        histogram = Histogram("h")
        histogram.observe(0.037)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.037)

    def test_quantile_with_all_equal_samples_collapses_to_the_value(self):
        histogram = Histogram("h")
        for _ in range(1000):
            histogram.observe(2.5)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert histogram.quantile(q) == pytest.approx(2.5)

    def test_quantile_beyond_last_bucket_stays_clamped_to_max(self):
        # Every observation lands in the implicit overflow bucket.
        histogram = Histogram("h", buckets=[1.0, 2.0])
        for value in (50.0, 100.0, 150.0):
            histogram.observe(value)
        assert histogram.quantile(1.0) == pytest.approx(150.0)
        assert histogram.quantile(0.5) <= 150.0
        assert histogram.quantile(0.0) == pytest.approx(50.0)
        for q in (0.1, 0.5, 0.9):
            assert 50.0 <= histogram.quantile(q) <= 150.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_convenience_helpers(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        registry.observe("latency", 0.25)
        registry.set_gauge("depth", 3)
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 5
        assert snapshot["depth"] == 3.0
        assert snapshot["latency"]["count"] == 1

    def test_snapshot_uses_int_for_integral_counters(self):
        registry = MetricsRegistry()
        registry.inc("calls", 3)
        registry.inc("seconds", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["calls"] == 3 and isinstance(snapshot["calls"], int)
        assert snapshot["seconds"] == 0.5 and isinstance(snapshot["seconds"], float)

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        registry.set_gauge("c", -2.0)
        json.dumps(registry.snapshot())

    def test_merge_counters_skips_non_numeric_and_bools(self):
        registry = MetricsRegistry()
        registry.merge_counters(
            {
                "queries": 4,
                "seconds": 0.5,
                "label": "worker-1",
                "nested": {"inner": 1},
                "flag": True,
            },
            prefix="w.",
        )
        snapshot = registry.snapshot()
        assert snapshot["w.queries"] == 4
        assert snapshot["w.seconds"] == 0.5
        assert "w.label" not in snapshot
        assert "w.nested" not in snapshot
        assert "w.flag" not in snapshot

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("service.queries", 3)
        registry.set_gauge("pool-depth", 2)
        registry.observe("lat", 0.5)
        text = registry.to_prometheus()
        assert "# TYPE service_queries counter" in text
        assert "service_queries 3" in text
        assert "# TYPE pool_depth gauge" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_buckets_are_cumulative_with_inf(self):
        # Scrape-compatibility contract: every bucket line is cumulative,
        # ends with +Inf == _count, and bounds render in ascending order.
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 3.5, 10.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="4"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text
        bucket_lines = [
            line for line in text.splitlines() if line.startswith("lat_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1].startswith('lat_bucket{le="+Inf"}')
