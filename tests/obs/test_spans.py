"""Tests for span tracing: lifecycle, nesting, propagation, capture."""

import json
import os
import threading

from repro import obs
from repro.obs.spans import _NULL_SPAN, remote_span_capture


class TestDisabledPath:
    def test_span_is_shared_null_object_when_disabled(self):
        assert not obs.is_enabled()
        assert obs.span("a") is obs.span("b") is _NULL_SPAN

    def test_null_span_accepts_attrs_and_nests(self):
        with obs.span("outer", x=1) as outer:
            outer.set(y=2)
            with obs.span("inner"):
                pass
        assert obs.spans_snapshot() == []

    def test_trace_context_is_none_when_disabled(self):
        with obs.span("outer"):
            assert obs.trace_context() is None


class TestEnabledPath:
    def test_root_span_recorded_with_ids_and_attrs(self):
        obs.configure(enabled=True)
        with obs.span("service.batch", queries=7) as live:
            live.set(hits=6)
        (record,) = obs.spans_snapshot()
        assert record["name"] == "service.batch"
        assert record["parent_id"] is None
        assert record["trace_id"]
        assert record["span_id"]
        assert record["attrs"] == {"queries": 7, "hits": 6}
        assert record["pid"] == os.getpid()
        assert record["duration"] >= 0.0

    def test_children_parent_onto_enclosing_span(self):
        obs.configure(enabled=True)
        with obs.span("root") as root:
            with obs.span("child") as child:
                with obs.span("grandchild") as grandchild:
                    assert obs.current_span() is grandchild
                    assert obs.current_trace_id() == root.trace_id
        records = {record["name"]: record for record in obs.spans_snapshot()}
        assert records["child"]["parent_id"] == root.span_id
        assert records["grandchild"]["parent_id"] == child.span_id
        assert {record["trace_id"] for record in records.values()} == {root.trace_id}

    def test_sibling_roots_get_distinct_traces(self):
        obs.configure(enabled=True)
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        first, second = obs.spans_snapshot()
        assert first["trace_id"] != second["trace_id"]

    def test_exception_recorded_and_propagated(self):
        obs.configure(enabled=True)
        try:
            with obs.span("boom"):
                raise KeyError("x")
        except KeyError:
            pass
        (record,) = obs.spans_snapshot()
        assert record["attrs"]["error"] == "KeyError"

    def test_span_metrics_histogram_recorded(self):
        obs.configure(enabled=True)
        with obs.span("anneal.run"):
            pass
        snapshot = obs.metrics().snapshot()
        assert snapshot["span.anneal.run"]["count"] == 1

    def test_span_metrics_opt_out(self):
        obs.configure(enabled=True, span_metrics=False)
        with obs.span("quiet"):
            pass
        assert "span.quiet" not in obs.metrics().snapshot()

    def test_buffer_is_bounded(self):
        obs.configure(enabled=True, max_spans=4)
        for index in range(10):
            with obs.span(f"s{index}"):
                pass
        records = obs.spans_snapshot()
        assert len(records) == 4
        assert records[-1]["name"] == "s9"

    def test_threads_keep_independent_span_stacks(self):
        obs.configure(enabled=True)
        seen = {}

        def worker():
            with obs.span("thread.root") as live:
                seen["trace"] = live.trace_id
                seen["parent"] = live.parent_id

        with obs.span("main.root") as main_root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The thread's span is a root of its own trace, not a child of main.
        assert seen["parent"] is None
        assert seen["trace"] != main_root.trace_id

    def test_ids_never_touch_the_global_rng(self):
        import random

        random.seed(123)
        expected = random.Random(123).random()
        obs.configure(enabled=True)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert random.random() == expected

    def test_jsonl_streaming(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.configure(enabled=True, jsonl=path)
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        obs.reset()  # closes the handle
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]

    def test_clear_spans_keeps_config(self):
        obs.configure(enabled=True)
        with obs.span("x"):
            pass
        obs.clear_spans()
        assert obs.spans_snapshot() == []
        assert obs.is_enabled()


class TestCrossProcessPropagation:
    def test_trace_context_names_the_current_span(self):
        obs.configure(enabled=True)
        with obs.span("dispatch") as live:
            context = obs.trace_context()
        assert context is not None
        trace_id, parent_id, pid, submitted = context
        assert trace_id == live.trace_id
        assert parent_id == live.span_id
        assert pid == os.getpid()
        assert submitted > 0

    def test_trace_context_none_without_live_span(self):
        obs.configure(enabled=True)
        assert obs.trace_context() is None

    def test_capture_noop_for_same_pid(self):
        obs.configure(enabled=True)
        with obs.span("dispatch"):
            context = obs.trace_context()
            with remote_span_capture(context) as captured:
                assert captured is None
                with obs.span("inline.child"):
                    pass
        records = {record["name"]: record for record in obs.spans_snapshot()}
        # Inline execution parents through the stack, not through capture.
        assert records["inline.child"]["parent_id"] == records["dispatch"]["span_id"]

    def test_capture_reparents_under_foreign_context(self):
        # Simulate a worker process by handing it a context from a fake pid.
        obs.configure(enabled=True)
        context = ("traceX", "parentY", os.getpid() + 1, 0.0)
        with remote_span_capture(context) as captured:
            with obs.span("worker.job"):
                with obs.span("worker.step"):
                    pass
        assert captured is not None and len(captured) == 2
        by_name = {record["name"]: record for record in captured}
        assert by_name["worker.job"]["trace_id"] == "traceX"
        assert by_name["worker.job"]["parent_id"] == "parentY"
        assert by_name["worker.step"]["parent_id"] == by_name["worker.job"]["span_id"]
        # Captured spans never leak into the local buffer.
        assert obs.spans_snapshot() == []

    def test_capture_enables_tracing_in_untraced_worker(self):
        # A fork-started worker may have tracing off; capture turns it on
        # for the job and restores the previous state afterwards.
        assert not obs.is_enabled()
        context = ("traceX", "parentY", os.getpid() + 1, 0.0)
        with remote_span_capture(context) as captured:
            assert obs.is_enabled()
            with obs.span("worker.job"):
                pass
        assert not obs.is_enabled()
        assert len(captured) == 1

    def test_ingest_spans_appends_and_observes_queue_metric(self):
        obs.configure(enabled=True)
        obs.ingest_spans(
            [
                {
                    "name": "worker.job",
                    "trace_id": "t",
                    "span_id": "s",
                    "parent_id": "p",
                    "start": 1.0,
                    "duration": 0.5,
                    "pid": 999,
                    "tid": 1,
                    "attrs": {"queue_seconds": 0.125},
                }
            ]
        )
        (record,) = obs.spans_snapshot()
        assert record["pid"] == 999
        snapshot = obs.metrics().snapshot()
        assert snapshot["span.worker.job"]["count"] == 1
        assert snapshot["pool.queue_seconds"]["sum"] == 0.125


class TestProfiling:
    def test_profile_pattern_dumps_stats(self, tmp_path):
        obs.configure(enabled=True, profile="prof.*", profile_dir=tmp_path)
        with obs.span("prof.hot"):
            sum(range(1000))
        with obs.span("other"):
            pass
        dumps = list(tmp_path.glob("*.prof"))
        assert len(dumps) == 1
        assert dumps[0].name.startswith("prof_hot")

    def test_nested_matching_spans_profile_only_outermost(self, tmp_path):
        obs.configure(enabled=True, profile="prof.*", profile_dir=tmp_path)
        with obs.span("prof.outer"):
            with obs.span("prof.inner"):
                pass
        names = sorted(path.name for path in tmp_path.glob("*.prof"))
        assert len(names) == 1
        assert names[0].startswith("prof_outer")
