"""Regression tests: reset() vs root hooks and span sinks.

Repeated server sessions in one process register a root hook (the tail
sampler's seal) and a span sink (its ingest feed) per session.  Before the
durable/transient split, ``obs.reset()`` left those registered, so a dead
session's buffers kept receiving live spans and hooks accumulated across
sessions.  These tests pin the fixed contract.
"""

from repro import obs
from repro.obs import spans as spans_module
from repro.obs.exporters import _auto_export_root


class TestResetSemantics:
    def test_reset_drops_transient_root_hooks(self):
        seen = []
        obs.add_root_hook(seen.append)
        obs.reset()
        obs.configure(enabled=True)
        with obs.span("op"):
            pass
        assert seen == []

    def test_reset_keeps_durable_builtin_hooks(self):
        # The exporters' auto-export hook registers as durable at import
        # time; reset() must not strip the library's own built-ins.
        obs.reset()
        assert _auto_export_root in spans_module._ROOT_HOOKS

    def test_reset_drops_span_sinks(self):
        seen = []
        obs.add_span_sink(seen.append)
        obs.reset()
        obs.configure(enabled=True)
        with obs.span("op"):
            pass
        assert seen == []

    def test_clear_spans_keeps_hooks_and_sinks(self):
        # clear_spans() is the light-weight buffer wipe: taps survive it.
        obs.configure(enabled=True)
        roots, all_spans = [], []
        obs.add_root_hook(roots.append)
        obs.add_span_sink(all_spans.append)
        obs.clear_spans()
        with obs.span("op"):
            pass
        assert len(roots) == 1
        assert len(all_spans) == 1

    def test_registering_the_same_hook_twice_is_idempotent(self):
        seen = []
        obs.configure(enabled=True)
        obs.add_root_hook(seen.append)
        obs.add_root_hook(seen.append)
        with obs.span("op"):
            pass
        assert len(seen) == 1
        obs.remove_root_hook(seen.append)
        with obs.span("op2"):
            pass
        assert len(seen) == 1

    def test_remove_is_idempotent(self):
        def hook(record):
            pass

        obs.remove_root_hook(hook)  # never registered: no-op
        obs.remove_span_sink(hook)


class TestRepeatedSessions:
    def test_sessions_do_not_cross_contaminate_trace_buffers(self):
        """Two sequential sampler sessions: the first's buffer stays frozen."""
        obs.configure(enabled=True)

        first = obs.TraceBuffer(capacity=4, min_samples=1)
        obs.add_span_sink(first.ingest)
        obs.add_root_hook(first.seal)
        with obs.root_span("serve.request", status=500):
            pass
        assert len(first) == 1

        # Session teardown path: reset drops the taps.
        obs.reset()
        obs.configure(enabled=True)

        second = obs.TraceBuffer(capacity=4, min_samples=1)
        obs.add_span_sink(second.ingest)
        obs.add_root_hook(second.seal)
        with obs.root_span("serve.request", status=503):
            pass

        assert len(first) == 1   # frozen: no leakage from session two
        assert len(second) == 1
        assert first.summaries()[0]["status"] == 500
        assert second.summaries()[0]["status"] == 503

    def test_repeated_register_reset_cycles_do_not_accumulate_hooks(self):
        baseline = len(spans_module._ROOT_HOOKS)
        for _ in range(5):
            buffer = obs.TraceBuffer(capacity=2, min_samples=1)
            obs.add_span_sink(buffer.ingest)
            obs.add_root_hook(buffer.seal)
            obs.reset()
        assert len(spans_module._ROOT_HOOKS) == baseline
        assert len(spans_module._SPAN_SINKS) == 0
