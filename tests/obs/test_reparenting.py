"""Worker-pool span re-parenting: one coordinator trace across N processes."""

import json
import os

import pytest

from repro import obs
from repro.core.generator import GeneratorConfig
from repro.parallel.sharding import ShardedStructureRegistry
from repro.service.engine import PlacementService
from tests.conftest import build_chain_circuit

SMOKE = GeneratorConfig.smoke(seed=7)


def make_queries(n, unique=4):
    vectors = [[(4 + i % 9, 4 + (i * 3) % 9)] * 4 for i in range(unique)]
    return [vectors[i % unique] for i in range(n)]


@pytest.fixture
def service(tmp_path):
    registry = ShardedStructureRegistry(tmp_path / "registry")
    service = PlacementService(registry, default_config=SMOKE)
    yield service
    service.close()


def _trace_tree(records):
    """Group the records of the (single) trace and index them by span id."""
    roots = [record for record in records if record["parent_id"] is None]
    assert len(roots) == 1, f"expected one root, got {[r['name'] for r in roots]}"
    root = roots[0]
    members = [record for record in records if record["trace_id"] == root["trace_id"]]
    return root, members, {record["span_id"]: record for record in members}


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_batch_spans_form_one_connected_trace(service, workers):
    obs.configure(enabled=True)
    circuit = build_chain_circuit()
    service.instantiate_batch(circuit, make_queries(16), workers=workers)
    root, members, by_id = _trace_tree(obs.spans_snapshot())
    assert root["name"] == "service.instantiate_batch"
    # Every span — including any produced inside worker processes — links
    # back to a span of the same trace: the tree is fully connected.
    for record in members:
        if record["parent_id"] is not None:
            assert record["parent_id"] in by_id, record["name"]
    names = {record["name"] for record in members}
    if workers > 1:
        # Only the real process fan-out goes through the pool; workers=1
        # serves the batch on the coordinator's thread path.
        assert "pool.dispatch" in names
        assert any(name.startswith("worker.") for name in names)
    assert "registry.fetch" in names


def test_multi_worker_spans_come_from_other_pids(service):
    obs.configure(enabled=True)
    circuit = build_chain_circuit()
    service.instantiate_batch(circuit, make_queries(16), workers=2)
    _, members, by_id = _trace_tree(obs.spans_snapshot())
    worker_jobs = [record for record in members if record["name"] == "worker.job"]
    assert worker_jobs, "pool path should have produced worker.job spans"
    assert all(record["pid"] != os.getpid() for record in worker_jobs)
    # Each worker job is parented under the coordinator span that carried
    # the trace context into the job spec.
    for record in worker_jobs:
        parent = by_id[record["parent_id"]]
        assert parent["pid"] == os.getpid()


def test_single_worker_runs_inline_without_foreign_pids(service):
    obs.configure(enabled=True)
    circuit = build_chain_circuit()
    service.instantiate_batch(circuit, make_queries(16), workers=1)
    _, members, _ = _trace_tree(obs.spans_snapshot())
    assert all(record["pid"] == os.getpid() for record in members)


def test_four_worker_chrome_trace_is_valid_and_reparented(service, tmp_path):
    obs.configure(enabled=True)
    circuit = build_chain_circuit()
    service.instantiate_batch(circuit, make_queries(16), workers=4)
    root, _, _ = _trace_tree(obs.spans_snapshot())
    path = obs.export_chrome_trace(tmp_path / "trace.json", trace_id=root["trace_id"])
    payload = json.loads(path.read_text())
    events = [event for event in payload["traceEvents"] if event["ph"] == "X"]
    assert events
    worker_events = [event for event in events if event["pid"] != os.getpid()]
    assert worker_events, "4-worker batch must contribute worker-process events"
    span_ids = {event["args"]["span_id"] for event in events}
    for event in worker_events:
        assert event["args"]["trace_id"] == root["trace_id"]
        assert event["args"]["parent_id"] in span_ids
    lanes = {event["args"]["name"] for event in payload["traceEvents"] if event["ph"] == "M"}
    assert any(name.startswith("coordinator") for name in lanes)
    assert any(name.startswith("worker") for name in lanes)


def test_route_batch_spans_reparent_across_pool(service):
    obs.configure(enabled=True)
    circuit = build_chain_circuit()
    with obs.span("test.route_root"):
        service.route_batch(circuit, make_queries(8), workers=2)
    roots = [r for r in obs.spans_snapshot() if r["parent_id"] is None]
    assert [r["name"] for r in roots] == ["test.route_root"]
    names = {r["name"] for r in obs.spans_snapshot()}
    assert "service.route_batch" in names
    assert "service.instantiate_batch" in names
