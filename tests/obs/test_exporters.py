"""Tests for the Chrome-trace / JSONL / manifest exporters."""

import json
import os

from repro import obs


def _run_tiny_trace():
    obs.configure(enabled=True)
    with obs.span("batch.root", queries=2):
        with obs.span("batch.child"):
            pass
    obs.metrics().inc("demo.counter", 5)


class TestChromeTrace:
    def test_export_is_valid_json_with_complete_events(self, tmp_path):
        _run_tiny_trace()
        path = obs.export_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {"batch.root", "batch.child"}
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == os.getpid()
        metadata = [event for event in events if event["ph"] == "M"]
        assert any("coordinator" in event["args"]["name"] for event in metadata)

    def test_parent_links_preserved_in_args(self, tmp_path):
        _run_tiny_trace()
        payload = json.loads(obs.export_chrome_trace(tmp_path / "t.json").read_text())
        by_name = {
            event["name"]: event
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        child = by_name["batch.child"]
        root = by_name["batch.root"]
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["args"]["trace_id"] == root["args"]["trace_id"]
        assert root["args"]["queries"] == 2

    def test_trace_id_filter(self, tmp_path):
        obs.configure(enabled=True)
        with obs.span("first") as first:
            pass
        with obs.span("second"):
            pass
        payload = json.loads(
            obs.export_chrome_trace(
                tmp_path / "one.json", trace_id=first.trace_id
            ).read_text()
        )
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"first"}

    def test_empty_buffer_exports_empty_event_list(self, tmp_path):
        payload = json.loads(obs.export_chrome_trace(tmp_path / "e.json").read_text())
        assert payload["traceEvents"] == []


class TestJsonlAndMetrics:
    def test_export_jsonl_round_trips_records(self, tmp_path):
        _run_tiny_trace()
        path = obs.export_jsonl(tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["batch.child", "batch.root"]

    def test_export_metrics_prometheus_and_json(self, tmp_path):
        _run_tiny_trace()
        prom = obs.export_metrics(tmp_path / "metrics.prom")
        assert "demo_counter 5" in prom.read_text()
        as_json = obs.export_metrics(tmp_path / "metrics.json", fmt="json")
        assert json.loads(as_json.read_text())["demo.counter"] == 5

    def test_export_metrics_rejects_unknown_format(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            obs.export_metrics(tmp_path / "x", fmt="yaml")


class TestManifestAndRunExport:
    def test_manifest_contents(self, tmp_path):
        _run_tiny_trace()
        path = obs.write_run_manifest(
            tmp_path / "run.manifest.json", "demo-run", extra={"seed": 7}
        )
        manifest = json.loads(path.read_text())
        assert manifest["label"] == "demo-run"
        assert manifest["span_count"] == 2
        assert manifest["pid"] == os.getpid()
        assert manifest["started_at"] <= manifest["finished_at"]
        assert manifest["metrics"]["demo.counter"] == 5
        assert manifest["extra"] == {"seed": 7}
        assert len(manifest["trace_ids"]) == 1

    def test_export_run_writes_all_three_artifacts(self, tmp_path):
        _run_tiny_trace()
        paths = obs.export_run(tmp_path, "my run/1")
        assert set(paths) == {"chrome_trace", "jsonl", "manifest"}
        for path in paths.values():
            assert path.exists()
            assert path.parent == tmp_path
        manifest = json.loads(paths["manifest"].read_text())
        assert manifest["artifacts"]["chrome_trace"] == str(paths["chrome_trace"])

    def test_root_span_auto_exports_when_export_dir_set(self, tmp_path):
        obs.configure(enabled=True, export_dir=tmp_path)
        with obs.span("synthesis.run"):
            with obs.span("synthesis.evaluate"):
                pass
        traces = list(tmp_path.glob("*.trace.json"))
        manifests = list(tmp_path.glob("*.manifest.json"))
        assert len(traces) == 1 and len(manifests) == 1
        payload = json.loads(traces[0].read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"synthesis.run", "synthesis.evaluate"}

    def test_child_spans_do_not_trigger_auto_export(self, tmp_path):
        obs.configure(enabled=True, export_dir=tmp_path)
        with obs.span("root"):
            with obs.span("child"):
                pass
            # Nothing exported while the root is still open.
            assert list(tmp_path.glob("*.manifest.json")) == []
        assert len(list(tmp_path.glob("*.manifest.json"))) == 1
