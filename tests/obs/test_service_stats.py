"""ServiceStats as metrics-backed views: exactness, mirroring, merging."""

import pytest

from repro import obs
from repro.service.engine import ServiceStats


class TestMetricsBackedViews:
    def test_defaults_are_zero_with_legacy_types(self):
        stats = ServiceStats()
        assert stats.queries == 0 and isinstance(stats.queries, int)
        assert stats.total_seconds == 0.0 and isinstance(stats.total_seconds, float)

    def test_plus_equals_updates_like_the_old_dataclass(self):
        stats = ServiceStats()
        stats.queries += 3
        stats.structure_hits += 2
        stats.total_seconds += 0.25
        assert stats.queries == 3
        assert stats.structure_hits == 2
        assert stats.total_seconds == 0.25

    def test_keyword_construction_and_unknown_field_rejected(self):
        stats = ServiceStats(queries=5, total_seconds=1.5)
        assert stats.queries == 5
        assert stats.total_seconds == 1.5
        with pytest.raises(TypeError):
            ServiceStats(teleports=1)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            ServiceStats().bogus_counter

    def test_equality_by_counter_values(self):
        a = ServiceStats(queries=2)
        b = ServiceStats(queries=2)
        c = ServiceStats(queries=3)
        assert a == b
        assert a != c

    def test_snapshot_is_independent(self):
        stats = ServiceStats(queries=4)
        frozen = stats.snapshot()
        stats.queries += 10
        assert frozen.queries == 4
        assert stats.queries == 14

    def test_metrics_snapshot_reproduces_legacy_counters_exactly(self):
        stats = ServiceStats()
        stats.queries += 7
        stats.batches += 2
        stats.memo_hits += 3
        stats.total_seconds += 0.125
        stats.record_source("structure", 5)
        stats.record_source("nearest")
        snapshot = stats.metrics.snapshot()
        for name, value in stats.as_dict().items():
            if name in ServiceStats._COUNTER_FIELDS:
                assert snapshot[f"service.{name}"] == value, name

    def test_derived_rates_still_work(self):
        stats = ServiceStats(queries=4, structure_hits=3, total_seconds=2.0)
        assert stats.structure_hit_rate == pytest.approx(0.75)
        assert stats.mean_latency_seconds == pytest.approx(0.5)
        assert stats.tier_counts["structure"] == 3


class TestGlobalMirroring:
    def test_updates_mirror_into_global_metrics_when_enabled(self):
        obs.configure(enabled=True)
        stats = ServiceStats()
        stats.queries += 2
        stats.queries += 3
        assert obs.metrics().snapshot()["service.queries"] == 5

    def test_no_mirroring_while_disabled(self):
        stats = ServiceStats()
        stats.queries += 2
        assert "service.queries" not in obs.metrics().snapshot()

    def test_two_services_accumulate_into_one_global_counter(self):
        obs.configure(enabled=True)
        a, b = ServiceStats(), ServiceStats()
        a.queries += 1
        b.queries += 2
        assert obs.metrics().snapshot()["service.queries"] == 3
        # ...while each instance keeps its exact private view.
        assert a.queries == 1 and b.queries == 2

    def test_snapshot_does_not_double_mirror(self):
        obs.configure(enabled=True)
        stats = ServiceStats()
        stats.queries += 2
        stats.snapshot()
        assert obs.metrics().snapshot()["service.queries"] == 2


class TestMergeWorkerCounters:
    def test_empty_worker_list_changes_nothing(self):
        stats = ServiceStats(queries=3)
        before = stats.as_dict()
        for worker_counters in []:  # no workers reported at all
            stats.merge_worker_counters(worker_counters)
        stats.merge_worker_counters({})  # a worker that reported nothing
        assert stats.as_dict() == before

    def test_disjoint_keys_are_ignored(self):
        stats = ServiceStats()
        stats.merge_worker_counters(
            {"queries": 100, "pool_jobs": 4, "unheard_of": 9, "memo_hits": 2}
        )
        # Only the infrastructure counters merge; the parent counts
        # queries itself and unknown keys never land anywhere.
        assert stats.queries == 0
        assert stats.memo_hits == 2
        with pytest.raises(AttributeError):
            stats.unheard_of

    def test_nested_dict_values_are_skipped(self):
        stats = ServiceStats()
        stats.merge_worker_counters(
            {
                "memo_hits": {"by_circuit": {"chain": 3}},
                "cache_hits": 2,
                "structures_loaded": None,
            }
        )
        assert stats.memo_hits == 0
        assert stats.cache_hits == 2
        assert stats.structures_loaded == 0

    def test_multiple_workers_sum_additively(self):
        stats = ServiceStats()
        for worker_counters in (
            {"memo_hits": 1, "cache_hits": 2},
            {"memo_hits": 3, "structures_generated": 1},
        ):
            stats.merge_worker_counters(worker_counters)
        assert stats.memo_hits == 4
        assert stats.cache_hits == 2
        assert stats.structures_generated == 1
