"""Tests for the flight recorder and the tail-based TraceBuffer."""

import json

import pytest

from repro import obs
from repro.obs.flight import FlightRecorder, TraceBuffer


def root(trace_id, status=200, duration=0.01, name="serve.request", **attrs):
    """A root span record of the shape spans.py emits."""
    record_attrs = {"status": status, **attrs}
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": f"{trace_id}-root",
        "parent_id": None,
        "start": 1000.0,
        "duration": duration,
        "pid": 1,
        "tid": 1,
        "attrs": record_attrs,
    }


def child(trace_id, index=0):
    return {
        "name": "serve.dispatch",
        "trace_id": trace_id,
        "span_id": f"{trace_id}-c{index}",
        "parent_id": f"{trace_id}-root",
        "start": 1000.0,
        "duration": 0.001,
        "pid": 1,
        "tid": 1,
        "attrs": {},
    }


class TestFlightRecorder:
    def test_ring_keeps_only_the_last_n(self):
        flight = FlightRecorder(capacity=3)
        for index in range(10):
            flight.record({"request_id": f"r{index}"})
        assert len(flight) == 3
        assert flight.recorded == 10
        assert [entry["request_id"] for entry in flight.snapshot()] == ["r7", "r8", "r9"]

    def test_dump_writes_jsonl_oldest_first(self, tmp_path):
        flight = FlightRecorder(capacity=8)
        flight.record({"request_id": "a", "status": 200})
        flight.record({"request_id": "b", "status": 504})
        path = flight.dump(tmp_path / "flight.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["request_id"] for entry in lines] == ["a", "b"]
        assert lines[1]["status"] == 504

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestTraceBufferPolicy:
    def test_error_traces_are_always_kept(self):
        buffer = TraceBuffer(capacity=8, min_samples=1)
        for status in (429, 500, 503, 504):
            trace_id = f"t{status}"
            buffer.ingest(child(trace_id))
            assert buffer.seal(root(trace_id, status=status, duration=0.0)) == "error"
        assert len(buffer) == 4
        spans = buffer.get("t504")
        assert spans is not None and len(spans) == 2

    def test_error_attr_keeps_a_trace_even_with_status_200(self):
        buffer = TraceBuffer(capacity=8, min_samples=1)
        verdict = buffer.seal(root("t1", status=200, error="ValueError"))
        assert verdict == "error"

    def test_boring_bulk_is_dropped_and_slowest_kept(self):
        buffer = TraceBuffer(capacity=16, slow_quantile=0.9, min_samples=10)
        for index in range(50):
            trace_id = f"fast{index}"
            buffer.ingest(child(trace_id))
            buffer.seal(root(trace_id, duration=0.010))
        verdict = buffer.seal(root("slow1", duration=5.0))
        assert verdict == "slow"
        stats = buffer.stats()
        assert stats["dropped"] > 0
        assert stats["kept_by_category"].get("slow", 0) >= 1
        # The fast bulk did not accumulate: memory stays bounded.
        assert stats["kept"] <= 16

    def test_no_slow_keeps_before_min_samples(self):
        buffer = TraceBuffer(capacity=8, min_samples=100)
        assert buffer.seal(root("t1", duration=99.0)) is None

    def test_eviction_prefers_dropping_slow_over_error(self):
        buffer = TraceBuffer(capacity=2, min_samples=1)
        buffer.seal(root("err1", status=500, duration=0.0))
        buffer.seal(root("slow1", duration=10.0))
        buffer.seal(root("slow2", duration=20.0))  # evicts slow1, not err1
        kept = {entry["trace_id"] for entry in buffer.summaries()}
        assert kept == {"err1", "slow2"}
        assert buffer.stats()["evicted"] == 1

    def test_live_span_index_is_bounded(self):
        buffer = TraceBuffer(capacity=4, max_live=3, min_samples=1)
        for index in range(10):
            buffer.ingest(child(f"t{index}"))
        assert buffer.stats()["live"] == 3

    def test_summaries_omit_span_payloads(self):
        buffer = TraceBuffer(capacity=4, min_samples=1)
        buffer.ingest(child("t1"))
        buffer.seal(root("t1", status=500))
        (summary,) = buffer.summaries()
        assert "spans" not in summary
        assert summary["span_count"] == 2
        assert summary["category"] == "error"


class TestTraceBufferWiredToSpans:
    def test_sink_and_root_hook_capture_a_real_trace(self):
        obs.configure(enabled=True)
        buffer = TraceBuffer(capacity=4, min_samples=1)
        obs.add_span_sink(buffer.ingest)
        obs.add_root_hook(lambda record: buffer.seal(record))
        with obs.root_span("serve.request", status=500, request_id="r1"):
            with obs.span("serve.dispatch"):
                pass
        assert len(buffer) == 1
        (summary,) = buffer.summaries()
        assert summary["request_id"] == "r1"
        spans = buffer.get(summary["trace_id"])
        names = {record["name"] for record in spans}
        assert names == {"serve.request", "serve.dispatch"}
