"""Shared fixtures for the observability tests.

The obs substrate is process-global state (config flag, span buffer,
metrics registry), so every test in this package starts and ends from the
pristine disabled state.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the observability substrate around every test."""
    obs.reset()
    yield
    obs.reset()
