"""Tests for the SLO tracker: rolling windows, burn rates, both SLI kinds."""

import pytest

from repro.obs.slo import SLObjective, SLOTracker


class FakeClock:
    """An injectable clock driven explicitly by the test."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def availability(target=0.999, window=3600.0):
    return SLObjective(name="availability", target=target, window_seconds=window)


def latency(target=0.99, threshold=0.5, window=3600.0):
    return SLObjective(
        name="latency",
        target=target,
        kind="latency",
        latency_threshold=threshold,
        window_seconds=window,
    )


class TestSLObjective:
    def test_error_budget_is_one_minus_target(self):
        assert availability(target=0.999).error_budget == pytest.approx(0.001)
        assert latency(target=0.95).error_budget == pytest.approx(0.05)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", target=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.9, kind="throughput")
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.9, kind="latency")  # no threshold
        with pytest.raises(ValueError):
            SLObjective(name="x", target=0.9, window_seconds=0.0)


class TestAvailabilitySLI:
    def test_compliance_counts_5xx_as_bad_and_4xx_as_good(self):
        clock = FakeClock()
        tracker = SLOTracker([availability()], clock=clock)
        for _ in range(98):
            tracker.record(200, 0.01)
        tracker.record(429, 0.01)  # protective shed: caller retries, not an outage
        tracker.record(500, 0.01)
        (report,) = tracker.snapshot()
        assert report["total"] == 100
        assert report["good"] == 99
        assert report["compliance"] == pytest.approx(0.99)

    def test_burn_rate_is_bad_fraction_over_error_budget(self):
        clock = FakeClock()
        tracker = SLOTracker([availability(target=0.99)], clock=clock)
        for _ in range(95):
            tracker.record(200, 0.01)
        for _ in range(5):
            tracker.record(503, 0.01)
        (report,) = tracker.snapshot()
        # bad fraction 0.05 against a 0.01 budget: burning 5x.
        assert report["burn_rate"] == pytest.approx(5.0)

    def test_empty_window_reports_full_compliance_and_zero_burn(self):
        tracker = SLOTracker([availability()], clock=FakeClock())
        (report,) = tracker.snapshot()
        assert report["total"] == 0
        assert report["compliance"] == 1.0
        assert report["burn_rate"] == 0.0


class TestLatencySLI:
    def test_only_successful_requests_feed_the_latency_window(self):
        clock = FakeClock()
        tracker = SLOTracker([latency(threshold=0.1)], clock=clock)
        tracker.record(200, 0.05)   # good
        tracker.record(200, 0.50)   # slow -> bad
        tracker.record(500, 9.99)   # failure: burns availability, not latency
        tracker.record(429, 9.99)   # shed: excluded too
        (report,) = tracker.snapshot()
        assert report["total"] == 2
        assert report["good"] == 1

    def test_snapshot_carries_the_threshold(self):
        tracker = SLOTracker([latency(threshold=0.25)], clock=FakeClock())
        (report,) = tracker.snapshot()
        assert report["latency_threshold_seconds"] == pytest.approx(0.25)


class TestRollingWindow:
    def test_outcomes_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = SLOTracker(
            [availability(window=60.0)], resolution=6, clock=clock
        )
        for _ in range(10):
            tracker.record(500, 0.01)
        (report,) = tracker.snapshot()
        assert report["total"] == 10 and report["good"] == 0
        # Two full windows later the bad epoch has aged out entirely.
        clock.advance(120.0)
        tracker.record(200, 0.01)
        (report,) = tracker.snapshot()
        assert report["total"] == 1
        assert report["good"] == 1
        assert report["burn_rate"] == 0.0

    def test_multi_window_burn_rates_show_a_fast_burn(self):
        clock = FakeClock()
        tracker = SLOTracker(
            [availability(target=0.99, window=3600.0)],
            burn_horizons=(300.0, 3600.0),
            resolution=72,
            clock=clock,
        )
        # An hour of clean traffic...
        for _ in range(50):
            tracker.record(200, 0.01)
            clock.advance(60.0)
        # ...then a hard 5-minute outage.
        for _ in range(10):
            tracker.record(500, 0.01)
            clock.advance(25.0)
        (report,) = tracker.snapshot()
        short = report["burn_rates"]["300s"]
        long = report["burn_rates"]["3600s"]
        # The short horizon sees (almost) pure failure; the long horizon
        # dilutes the outage across the hour of clean traffic.
        assert short > long
        assert short > 50.0

    def test_objective_names_must_be_unique(self):
        with pytest.raises(ValueError):
            SLOTracker([availability(), availability()])
