"""Tests for the global router: connectivity, edge cases, symmetry, congestion."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.cost.wirelength import per_net_wirelength
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.route import (
    GlobalRouter,
    RouterConfig,
    route_placement,
    symmetric_net_pairs,
)


def two_block_circuit():
    builder = CircuitBuilder("pair")
    builder.block("a", 2, 4, 2, 4)
    builder.block("b", 2, 4, 2, 4)
    builder.simple_net("n", ["a", "b"])
    return builder.build()


class TestBasicRouting:
    def test_single_net_routes_and_bounds_hpwl(self):
        circuit = two_block_circuit()
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(8, 6, 2, 2)}
        bounds = FloorplanBounds(12, 10)
        routed = route_placement(circuit, rects, bounds=bounds, config=RouterConfig(resolution=1))
        assert routed.is_fully_routed
        net = routed.nets["n"]
        assert not net.failed
        assert net.num_segments > 0
        hpwl = per_net_wirelength(circuit, rects, bounds)["n"]
        assert net.wirelength >= hpwl - 1e-9

    def test_routed_wirelength_bounds_hpwl_on_benchmark(self):
        from repro.baselines.template import TemplatePlacer
        from repro.benchcircuits import get_benchmark
        from repro.route import derive_bounds

        circuit = get_benchmark("two_stage_opamp")
        placement = TemplatePlacer(circuit).place(circuit.min_dims())
        bounds = derive_bounds(placement.rects)
        routed = route_placement(circuit, placement, bounds=bounds)
        assert routed.is_fully_routed
        hpwl = per_net_wirelength(circuit, dict(placement.rects), bounds)
        for name, length in hpwl.items():
            assert routed.wirelength(name) >= length - 1e-9

    def test_accepts_placement_and_mapping(self):
        circuit = two_block_circuit()
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(6, 0, 2, 2)}
        direct = route_placement(circuit, rects, config=RouterConfig(resolution=1))
        assert direct.is_fully_routed

    def test_stats_are_plain_data(self):
        circuit = two_block_circuit()
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(6, 0, 2, 2)}
        routed = route_placement(circuit, rects, config=RouterConfig(resolution=1))
        stats = routed.stats()
        assert stats["overflow"] == 0.0
        assert stats["routed_wirelength"] == pytest.approx(routed.total_wirelength)


class TestEdgeCases:
    def test_single_pin_net_is_degenerate_not_failed(self):
        builder = CircuitBuilder("solo")
        builder.block("a", 2, 4, 2, 4)
        builder.block("b", 2, 4, 2, 4)
        builder.simple_net("lonely", ["a"])
        builder.simple_net("n", ["a", "b"])
        # validate=False: a one-terminal internal net is malformed by the
        # netlist rules but must still not break the router.
        circuit = builder.build(validate=False)
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(6, 0, 2, 2)}
        routed = route_placement(circuit, rects, config=RouterConfig(resolution=1))
        lonely = routed.nets["lonely"]
        assert not lonely.failed
        assert lonely.segments == ()
        assert lonely.wirelength == 0.0
        assert routed.is_fully_routed

    def test_pins_on_floorplan_boundary_route(self):
        builder = CircuitBuilder("edge")
        builder.block("a", 2, 4, 2, 4, pins={"west": (0.0, 0.5)})
        builder.block("b", 2, 4, 2, 4, pins={"east": (1.0, 0.5)})
        builder.net("n", ("a", "west"), ("b", "east"))
        builder.net("pad", ("a", "west"), external=True, io_position=(0.0, 0.0))
        circuit = builder.build()
        # Both blocks flush against the canvas edges; pins sit exactly on
        # the floorplan boundary, as does the external I/O corner.
        bounds = FloorplanBounds(10, 6)
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(8, 4, 2, 2)}
        routed = route_placement(circuit, rects, bounds=bounds, config=RouterConfig(resolution=1))
        assert routed.is_fully_routed
        assert routed.nets["n"].wirelength > 0
        assert routed.nets["pad"].wirelength > 0

    def test_fully_blocked_grid_reports_failure_without_hanging(self):
        circuit = two_block_circuit()
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(6, 0, 2, 2)}
        bounds = FloorplanBounds(8, 4)
        router = GlobalRouter(circuit, bounds=bounds, config=RouterConfig(resolution=1))
        # Pre-block every node (a blockage swallowing the whole canvas and
        # its boundary), then route: every pin is unreachable.
        blocked = dict(rects)
        blocked["wall"] = Rect(-1, -1, 12, 8)
        routed = router.route(blocked)
        assert routed.failed_nets == ("n",)
        assert not routed.is_fully_routed
        assert routed.nets["n"].wirelength == 0.0

    def test_walled_off_pin_fails_cleanly(self):
        # An unblocked pin whose every path is cut: A* must exhaust and
        # mark the net failed instead of spinning.
        builder = CircuitBuilder("walled")
        builder.block("a", 2, 4, 2, 4)
        builder.block("b", 2, 4, 2, 4)
        builder.simple_net("n", ["a", "b"])
        circuit = builder.build()
        bounds = FloorplanBounds(11, 11)
        rects = {
            "a": Rect(0, 0, 2, 2),
            "b": Rect(9, 9, 2, 2),
            # A wall bisecting the canvas, overhanging both edges so not
            # even the boundary corridor survives.
            "wall": Rect(5, -1, 1, 13),
        }
        grid_config = RouterConfig(resolution=0.5)  # wall interior is blocked at res 0.5
        routed = GlobalRouter(circuit, bounds=bounds, config=grid_config).route(rects)
        assert "n" in routed.failed_nets


class TestSymmetry:
    def _symmetric_setup(self):
        builder = CircuitBuilder("diff")
        builder.block("a_l", 4, 4, 4, 4)
        builder.block("a_r", 4, 4, 4, 4)
        builder.block("tail", 4, 4, 4, 4)
        builder.net("n_l", ("a_l", "c"), ("tail", "c"))
        builder.net("n_r", ("a_r", "c"), ("tail", "c"))
        builder.symmetry("s", pairs=[("a_l", "a_r")], self_symmetric=["tail"])
        circuit = builder.build()
        rects = {
            "a_l": Rect(2, 10, 4, 4),
            "a_r": Rect(14, 10, 4, 4),
            "tail": Rect(8, 2, 4, 4),
        }
        return circuit, rects, 10.0  # axis at x = 10

    def test_pairs_found(self):
        circuit, _, _ = self._symmetric_setup()
        pairs = symmetric_net_pairs(circuit)
        assert len(pairs) == 1
        assert {pairs[0].primary, pairs[0].mirror} == {"n_l", "n_r"}

    def test_mirrored_route_is_exact_reflection(self):
        circuit, rects, axis = self._symmetric_setup()
        routed = route_placement(
            circuit, rects, bounds=FloorplanBounds(20, 20), config=RouterConfig(resolution=1)
        )
        assert routed.is_fully_routed
        assert routed.mirrored_nets == ("n_r",)
        primary = routed.nets["n_l"]
        mirror = routed.nets["n_r"]
        assert mirror.mirrored_from == "n_l"
        assert mirror.wirelength == pytest.approx(primary.wirelength)
        reflected = sorted(
            tuple(sorted(((2 * axis - x1, y1), (2 * axis - x2, y2))))
            for (x1, y1), (x2, y2) in primary.segments
        )
        actual = sorted(tuple(sorted(segment)) for segment in mirror.segments)
        assert reflected == actual

    def test_mirroring_can_be_disabled(self):
        circuit, rects, _ = self._symmetric_setup()
        routed = route_placement(
            circuit,
            rects,
            bounds=FloorplanBounds(20, 20),
            config=RouterConfig(resolution=1, mirror_symmetric_nets=False),
        )
        assert routed.is_fully_routed
        assert routed.mirrored_nets == ()

    def test_asymmetric_placement_falls_back_to_independent_routing(self):
        circuit, rects, _ = self._symmetric_setup()
        rects = dict(rects)
        rects["a_r"] = Rect(13, 9, 4, 4)  # break the mirror geometry
        routed = route_placement(
            circuit, rects, bounds=FloorplanBounds(20, 20), config=RouterConfig(resolution=1)
        )
        # Every net still connects even though mirroring was illegal.
        assert routed.failed_nets == ()


class TestCongestion:
    def test_congestion_aware_costs_spread_contending_nets(self):
        # Two nets whose shortest paths share the bottom-row corridor, at
        # capacity 1: the router must shift one of them onto a free track
        # instead of overloading the shared edges.
        builder = CircuitBuilder("congested")
        for name in ("l0", "r0", "l1", "r1"):
            builder.block(name, 1, 2, 1, 2, pins={"p": (0.5, 0.5)})
        builder.net("n0", ("l0", "p"), ("r0", "p"))
        builder.net("n1", ("l1", "p"), ("r1", "p"))
        circuit = builder.build()
        rects = {
            "l0": Rect(0, 0, 1, 1),
            "r0": Rect(9, 0, 1, 1),
            "l1": Rect(2, 0, 1, 1),
            "r1": Rect(7, 0, 1, 1),
        }
        routed = route_placement(
            circuit,
            rects,
            bounds=FloorplanBounds(10, 4),
            config=RouterConfig(resolution=1, capacity=1, max_iterations=12),
        )
        assert routed.failed_nets == ()
        assert routed.overflow == 0
        assert routed.max_congestion <= 1

    def test_iteration_cap_terminates_with_reported_overflow(self):
        # Ten nets forced through a single-track bottleneck cannot all fit;
        # the router must stop at the cap and report honest overflow.
        builder = CircuitBuilder("jammed")
        builder.block("a", 1, 2, 1, 2, pins={"p": (0.5, 0.5)})
        builder.block("b", 1, 2, 1, 2, pins={"p": (0.5, 0.5)})
        for i in range(10):
            builder.net(f"n{i}", ("a", "p"), ("b", "p"))
        circuit = builder.build()
        rects = {"a": Rect(0, 0, 1, 1), "b": Rect(3, 0, 1, 1)}
        routed = route_placement(
            circuit,
            rects,
            bounds=FloorplanBounds(4, 1),
            config=RouterConfig(resolution=1, capacity=1, max_iterations=3),
        )
        assert routed.iterations == 3
        assert routed.overflow > 0
        assert not routed.is_fully_routed
