"""Tests for the routing grid: lattice geometry, blockages, pin access."""

import pytest

from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.route.grid import RoutingGrid, default_resolution


class TestLattice:
    def test_shape_covers_canvas(self):
        grid = RoutingGrid(FloorplanBounds(10, 6), resolution=1)
        assert grid.shape == (11, 7)
        assert grid.node_position((10, 6)) == (10.0, 6.0)

    def test_default_resolution_is_unit_for_small_canvases(self):
        assert default_resolution(FloorplanBounds(30, 30)) == 1

    def test_default_resolution_coarsens_large_canvases(self):
        bounds = FloorplanBounds(400, 400)
        resolution = default_resolution(bounds)
        assert resolution > 1
        grid = RoutingGrid(bounds)
        assert max(grid.shape) <= 50

    def test_snap_clamps_to_lattice(self):
        grid = RoutingGrid(FloorplanBounds(10, 10), resolution=1)
        assert grid.snap(3.4, 7.6) == (3, 8)
        assert grid.snap(-5.0, 25.0) == (0, 10)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RoutingGrid(FloorplanBounds(10, 10), resolution=0)
        with pytest.raises(ValueError):
            RoutingGrid(FloorplanBounds(10, 10), capacity=0)


class TestBlockages:
    def test_blocks_strict_interior_only(self):
        grid = RoutingGrid(FloorplanBounds(10, 10), resolution=1)
        grid.block_rect(Rect(2, 2, 4, 4))
        assert grid.is_blocked((3, 3))
        assert grid.is_blocked((5, 5))
        # Boundary nodes stay routable corridors.
        assert not grid.is_blocked((2, 3))
        assert not grid.is_blocked((6, 3))
        assert not grid.is_blocked((3, 2))
        assert not grid.is_blocked((3, 6))

    def test_boundary_nodes_stay_free_at_fractional_resolution(self):
        # 33/1.1 evaluates just below 30 in floats; the index math must not
        # let that round a boundary node (x exactly 33.0) into the interior.
        grid = RoutingGrid(FloorplanBounds(110, 110), resolution=1.1)
        grid.block_rect(Rect(33, 0, 11, 110))
        assert not grid.is_blocked((30, 50))  # node at x = 33.0, the left edge
        assert grid.is_blocked((31, 50))      # node at x = 34.1, strictly inside

    def test_unit_wide_block_has_no_interior(self):
        grid = RoutingGrid(FloorplanBounds(10, 10), resolution=1)
        grid.block_rect(Rect(4, 0, 1, 10))
        assert not any(grid.is_blocked((4, j)) for j in range(11))

    def test_access_node_prefers_snapped_node_when_free(self):
        grid = RoutingGrid(FloorplanBounds(10, 10), resolution=1)
        assert grid.access_node(3.2, 4.9) == (3, 5)

    def test_access_node_escapes_own_block(self):
        grid = RoutingGrid(FloorplanBounds(10, 10), resolution=1)
        grid.block_rect(Rect(2, 2, 4, 4))
        node = grid.access_node(4.0, 4.0)  # dead center of the block
        assert node is not None
        assert not grid.is_blocked(node)
        # Nearest free node is on the block boundary, two units away.
        x, y = grid.node_position(node)
        assert abs(x - 4.0) + abs(y - 4.0) == pytest.approx(2.0)

    def test_access_node_none_when_everything_blocked(self):
        grid = RoutingGrid(FloorplanBounds(4, 4), resolution=1)
        grid.block_rect(Rect(-1, -1, 6, 6))  # swallows the boundary too
        assert grid.access_node(2.0, 2.0) is None


class TestEdgeAccounting:
    def test_usage_and_overflow(self):
        grid = RoutingGrid(FloorplanBounds(4, 4), resolution=1, capacity=1)
        edge = ((0, 0), (1, 0))
        grid.add_usage([edge], +1)
        assert grid.usage(*edge) == 1
        assert grid.total_overflow == 0
        grid.add_usage([edge], +1)
        assert grid.total_overflow == 1
        assert grid.overflowed_edges() == [edge]
        assert grid.max_usage == 2
        grid.add_usage([edge], -1)
        assert grid.total_overflow == 0

    def test_edge_cost_grows_with_congestion_and_history(self):
        grid = RoutingGrid(FloorplanBounds(4, 4), resolution=1, capacity=1)
        edge = ((1, 1), (2, 1))
        base = grid.edge_cost(*edge, congestion_weight=2.0)
        grid.add_usage([edge], +1)
        congested = grid.edge_cost(*edge, congestion_weight=2.0)
        grid.add_history([edge], 1.0)
        historied = grid.edge_cost(*edge, congestion_weight=2.0)
        assert base < congested < historied

    def test_non_neighbour_edge_rejected(self):
        grid = RoutingGrid(FloorplanBounds(4, 4), resolution=1)
        with pytest.raises(ValueError):
            grid.edge_key((0, 0), (2, 0))
