"""Cross-layer tests: routing feeding parasitics, cost, api, service, viz, loop."""

import pytest

from repro.benchcircuits import get_benchmark
from repro.circuit.builder import CircuitBuilder
from repro.core.generator import GeneratorConfig
from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.cost.penalties import routability_penalty
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.route import RouterConfig, route_placement
from repro.service import PlacementService
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig
from repro.synthesis.parasitics import (
    estimate_parasitics,
    estimate_parasitics_from_routes,
)
from repro.viz.svg import render_svg


def _placed_opamp():
    circuit = get_benchmark("two_stage_opamp")
    rects = {}
    for i, block in enumerate(circuit.blocks):
        rects[block.name] = Rect(i * 16, 0, block.min_w, block.min_h)
    return circuit, rects


class TestRoutedParasitics:
    def test_from_routes_records_model_and_uses_routed_lengths(self):
        circuit, rects = _placed_opamp()
        routed = route_placement(circuit, rects)
        estimate = estimate_parasitics_from_routes(circuit, routed, rects=rects)
        assert estimate.wirelength_model == "routed"
        assert estimate.from_routing
        assert estimate.total_wirelength_um > 0
        # Routed lengths dominate the HPWL estimate net by net.
        hpwl_estimate = estimate_parasitics(circuit, rects)
        for name in hpwl_estimate.net_wirelength_um:
            assert (
                estimate.net_wirelength_um[name]
                >= hpwl_estimate.net_wirelength_um[name] - 1e-9
            )

    def test_placement_estimator_selection_is_recorded(self):
        circuit, rects = _placed_opamp()
        for model in ("hpwl", "star", "mst"):
            estimate = estimate_parasitics(circuit, rects, wirelength_model=model)
            assert estimate.wirelength_model == model
            assert not estimate.from_routing

    def test_failed_nets_fall_back_to_placement_estimate(self):
        builder = CircuitBuilder("fail")
        builder.block("a", 2, 4, 2, 4)
        builder.block("b", 2, 4, 2, 4)
        builder.simple_net("n", ["a", "b"])
        circuit = builder.build()
        rects = {"a": Rect(0, 0, 2, 2), "b": Rect(6, 0, 2, 2)}
        blocked = dict(rects)
        blocked["wall"] = Rect(-1, -1, 12, 8)
        routed = route_placement(
            circuit,
            blocked,
            bounds=FloorplanBounds(8, 4),
            config=RouterConfig(resolution=1),
        )
        assert routed.failed_nets == ("n",)
        estimate = estimate_parasitics_from_routes(circuit, routed, rects=rects)
        assert estimate.net_wirelength_um["n"] > 0


class TestRoutabilityCost:
    def test_spread_layout_is_cheaper_than_stacked(self):
        builder = CircuitBuilder("cong")
        for i in range(6):
            builder.block(f"b{i}", 2, 4, 2, 4)
        for i in range(0, 6, 2):
            builder.simple_net(f"n{i}", [f"b{i}", f"b{i + 1}"])
        circuit = builder.build()
        bounds = FloorplanBounds(40, 40)
        # All nets crammed into one corner bin vs spread over the canvas.
        stacked = {f"b{i}": Rect(0, 3 * i, 2, 2) for i in range(6)}
        spread = {f"b{i}": Rect(12 * (i % 3), 18 * (i // 3), 2, 2) for i in range(6)}
        assert routability_penalty(stacked, circuit, bounds) >= routability_penalty(
            spread, circuit, bounds
        )

    def test_weight_off_keeps_component_zero(self):
        circuit, rects = _placed_opamp()
        bounds = FloorplanBounds(100, 30)
        cost = PlacementCostFunction(circuit, bounds).evaluate(rects)
        assert cost.routability == 0.0

    def test_weight_on_scores_component(self):
        circuit, rects = _placed_opamp()
        bounds = FloorplanBounds(100, 30)
        weights = CostWeights(routability=1.0)
        cost = PlacementCostFunction(circuit, bounds, weights=weights).evaluate(rects)
        assert cost.routability >= 0.0
        assert "routability" in cost.as_dict()


class TestPlacementRoutingMetadata:
    def test_with_routing_attaches_stats(self):
        circuit, rects = _placed_opamp()
        routed = route_placement(circuit, rects)
        service = PlacementService(default_config=GeneratorConfig.smoke(seed=0))
        placement = service.instantiate(circuit, circuit.min_dims())
        assert not placement.is_routed
        tagged = placement.with_routing(routed)
        assert tagged.is_routed
        assert tagged.routing["overflow"] == 0.0
        assert tagged.routing["routed_wirelength"] == pytest.approx(
            routed.total_wirelength
        )

    def test_with_routing_accepts_plain_mapping(self):
        service = PlacementService(default_config=GeneratorConfig.smoke(seed=0))
        circuit = get_benchmark("two_stage_opamp")
        placement = service.instantiate(circuit, circuit.min_dims())
        tagged = placement.with_routing({"overflow": 0.0})
        assert tagged.routing == {"overflow": 0.0}


class TestServiceRouteCache:
    def test_repeat_routes_hit_the_cache(self):
        service = PlacementService(default_config=GeneratorConfig.smoke(seed=0))
        circuit = get_benchmark("two_stage_opamp")
        dims = circuit.min_dims()
        placement_a, layout_a = service.route(circuit, dims)
        placement_b, layout_b = service.route(circuit, dims)
        assert layout_a is layout_b
        assert placement_a.is_routed and placement_b.is_routed
        assert service.stats.route_queries == 2
        assert service.stats.route_cache_hits == 1
        assert "route_queries" in service.stats.as_dict()

    def test_different_router_configs_cache_separately(self):
        service = PlacementService(default_config=GeneratorConfig.smoke(seed=0))
        circuit = get_benchmark("two_stage_opamp")
        dims = circuit.min_dims()
        _, layout_a = service.route(circuit, dims)
        _, layout_b = service.route(circuit, dims, router=RouterConfig(capacity=8))
        assert layout_a is not layout_b
        assert service.stats.route_cache_hits == 0


class TestRoutedSvg:
    def test_routes_drawn_as_lines(self):
        circuit, rects = _placed_opamp()
        routed = route_placement(circuit, rects)
        plain = render_svg(rects)
        wired = render_svg(rects, routes=routed)
        assert "<line" not in plain
        assert wired.count("<line") >= sum(
            net.num_segments for net in routed.nets.values()
        )
        assert 'stroke-dasharray' in wired  # pin-escape stubs draw dashed


class TestRoutedSynthesisLoop:
    def test_loop_runs_end_to_end_with_routed_parasitics(self):
        design = two_stage_opamp_design()
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            {"kind": "template"},
            config=SynthesisConfig(
                optimizer=SizingOptimizerConfig(max_iterations=6),
                routed_parasitics=True,
            ),
            seed=0,
        )
        result = loop.run()
        assert result.evaluations >= 6
        assert result.routing_seconds > 0.0
        best = result.best
        assert best.parasitics is not None
        assert best.parasitics.wirelength_model == "routed"
        assert best.placement.is_routed
        assert best.placement.routing["failed_nets"] == 0.0

    def test_loop_default_stays_hpwl(self):
        design = two_stage_opamp_design()
        loop = LayoutInclusiveSynthesis(
            design.sizing_model,
            design.performance_model,
            design.spec,
            {"kind": "template"},
            config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=3)),
            seed=0,
        )
        result = loop.run()
        assert result.routing_seconds == 0.0
        assert result.best.parasitics.wirelength_model == "hpwl"
        assert not result.best.placement.is_routed
