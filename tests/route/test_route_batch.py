"""Tests for batched routing: deduplication, ordering, fan-out."""

from repro.circuit.builder import CircuitBuilder
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.route import RouterConfig, route_batch


def _circuit():
    builder = CircuitBuilder("batch")
    builder.block("a", 2, 4, 2, 4)
    builder.block("b", 2, 4, 2, 4)
    builder.simple_net("n", ["a", "b"])
    return builder.build()


def _rects(offset: int):
    return {"a": Rect(0, 0, 2, 2), "b": Rect(4 + offset, 0, 2, 2)}


class TestRouteBatch:
    def test_deduplicates_identical_placements(self):
        circuit = _circuit()
        placements = [_rects(0), _rects(2), _rects(0), _rects(2), _rects(0)]
        batch = route_batch(
            circuit,
            placements,
            bounds=FloorplanBounds(12, 6),
            config=RouterConfig(resolution=1),
        )
        assert batch.total_layouts == 5
        assert batch.unique_layouts == 2
        assert batch.duplicate_layouts == 3
        # Duplicates share the routed object, in input order.
        assert batch[0] is batch[2] is batch[4]
        assert batch[1] is batch[3]
        assert batch[0] is not batch[1]

    def test_results_align_with_inputs(self):
        circuit = _circuit()
        batch = route_batch(
            circuit,
            [_rects(0), _rects(4)],
            bounds=FloorplanBounds(12, 6),
            config=RouterConfig(resolution=1),
        )
        # The wider placement routes a longer wire.
        assert batch[1].total_wirelength > batch[0].total_wirelength
        assert batch.total_overflow == 0

    def test_parallel_fanout_matches_serial(self):
        circuit = _circuit()
        placements = [_rects(i % 4) for i in range(16)]
        bounds = FloorplanBounds(12, 6)
        config = RouterConfig(resolution=1)
        serial = route_batch(circuit, placements, bounds=bounds, config=config)
        parallel = route_batch(
            circuit, placements, bounds=bounds, config=config, max_workers=4
        )
        assert parallel.unique_layouts == serial.unique_layouts == 4
        for s, p in zip(serial, parallel):
            assert p.total_wirelength == s.total_wirelength

    def test_iterating_batch_yields_layouts(self):
        circuit = _circuit()
        batch = route_batch(
            circuit,
            [_rects(0)],
            bounds=FloorplanBounds(12, 6),
            config=RouterConfig(resolution=1),
        )
        layouts = list(batch)
        assert len(layouts) == len(batch) == 1
        assert layouts[0].is_fully_routed
