"""Tests for circuit blocks."""

import pytest

from repro.circuit.block import Block
from repro.circuit.devices import DeviceType
from repro.circuit.pin import Pin


class TestBlockValidation:
    def test_valid_block(self):
        block = Block("m1", 4, 12, 5, 15)
        assert block.min_dims == (4, 5)
        assert block.max_dims == (12, 15)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Block("", 4, 12, 4, 12)

    def test_non_positive_minimum_rejected(self):
        with pytest.raises(ValueError):
            Block("m1", 0, 12, 4, 12)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError):
            Block("m1", 10, 4, 4, 12)

    def test_center_pin_always_present(self):
        block = Block("m1", 4, 12, 4, 12)
        assert "c" in block.pins

    def test_custom_pins_kept(self):
        block = Block("m1", 4, 12, 4, 12, pins={"d": Pin("d", 0.1, 0.9)})
        assert set(block.pins) == {"c", "d"}


class TestBlockQueries:
    def test_spans(self):
        block = Block("m1", 4, 12, 5, 15)
        assert block.width_span == 9
        assert block.height_span == 11
        assert block.max_area == 12 * 15

    def test_clamp_dims(self):
        block = Block("m1", 4, 12, 4, 12)
        assert block.clamp_dims(1, 20) == (4, 12)
        assert block.clamp_dims(7, 8) == (7, 8)

    def test_admits(self):
        block = Block("m1", 4, 12, 4, 12)
        assert block.admits(4, 12)
        assert not block.admits(3, 8)
        assert not block.admits(8, 13)

    def test_pin_lookup(self):
        block = Block("m1", 4, 12, 4, 12, pins={"d": Pin("d", 0.1, 0.9)})
        assert block.pin("d").fx == 0.1
        with pytest.raises(KeyError):
            block.pin("missing")

    def test_add_pin(self):
        block = Block("m1", 4, 12, 4, 12)
        block.add_pin(Pin("g", 0.5, 1.0))
        assert "g" in block.pins
        with pytest.raises(ValueError):
            block.add_pin(Pin("g", 0.5, 1.0))

    def test_device_type_flags(self):
        assert DeviceType.NMOS.is_transistor_based
        assert not DeviceType.CAPACITOR.is_transistor_based
        assert DeviceType.RESISTOR.is_passive
        assert not DeviceType.DIFF_PAIR.is_passive
