"""Tests for the Circuit container and its builder."""

import pytest

from repro.circuit.block import Block
from repro.circuit.builder import CircuitBuilder
from repro.circuit.net import Net, Terminal
from repro.circuit.netlist import Circuit
from repro.circuit.validation import CircuitValidationError, collect_problems, validate_circuit


def small_circuit() -> Circuit:
    builder = CircuitBuilder("small")
    builder.block("a", 4, 10, 4, 10)
    builder.block("b", 4, 10, 4, 10)
    builder.block("c", 4, 10, 4, 10)
    builder.simple_net("n1", ["a", "b"])
    builder.simple_net("n2", ["b", "c"])
    return builder.build()


class TestCircuitStructure:
    def test_counts(self):
        circuit = small_circuit()
        assert circuit.num_blocks == 3
        assert circuit.num_nets == 2
        assert circuit.num_terminals == 4
        assert circuit.summary() == {"blocks": 3, "nets": 2, "terminals": 4}

    def test_block_lookup(self):
        circuit = small_circuit()
        assert circuit.block_index("b") == 1
        assert circuit.block("c").name == "c"
        assert circuit.has_block("a") and not circuit.has_block("z")
        with pytest.raises(KeyError):
            circuit.block("z")

    def test_net_lookup(self):
        circuit = small_circuit()
        assert circuit.net("n1").num_terminals == 2
        with pytest.raises(KeyError):
            circuit.net("missing")

    def test_dims_helpers(self):
        circuit = small_circuit()
        assert circuit.min_dims() == [(4, 4)] * 3
        assert circuit.max_dims() == [(10, 10)] * 3
        assert circuit.dims_in_bounds([(5, 5), (4, 10), (10, 4)])
        assert not circuit.dims_in_bounds([(5, 5), (4, 11), (10, 4)])
        assert not circuit.dims_in_bounds([(5, 5)])

    def test_nets_on_block(self):
        circuit = small_circuit()
        assert [net.name for net in circuit.nets_on_block("b")] == ["n1", "n2"]
        assert [net.name for net in circuit.nets_on_block("a")] == ["n1"]

    def test_duplicate_block_rejected(self):
        circuit = small_circuit()
        with pytest.raises(ValueError):
            circuit.add_block(Block("a", 4, 10, 4, 10))

    def test_duplicate_net_rejected(self):
        circuit = small_circuit()
        with pytest.raises(ValueError):
            circuit.add_net(Net("n1", (Terminal("a"), Terminal("b"))))

    def test_net_referencing_unknown_block_rejected(self):
        circuit = small_circuit()
        with pytest.raises(ValueError):
            circuit.add_net(Net("n3", (Terminal("z"), Terminal("a"))))

    def test_connectivity_graph(self):
        circuit = small_circuit()
        graph = circuit.connectivity_graph()
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.has_edge("a", "b") and graph.has_edge("b", "c")
        assert not graph.has_edge("a", "c")

    def test_connectivity_graph_accumulates_weights(self):
        builder = CircuitBuilder("w")
        builder.block("a", 4, 10, 4, 10)
        builder.block("b", 4, 10, 4, 10)
        builder.simple_net("n1", ["a", "b"], weight=1.0)
        builder.simple_net("n2", ["a", "b"], weight=2.0)
        graph = builder.build().connectivity_graph()
        assert graph["a"]["b"]["weight"] == 3.0


class TestBuilder:
    def test_builder_pins_and_symmetry(self):
        builder = CircuitBuilder("sym")
        builder.block("a", 4, 10, 4, 10, pins={"d": (0.1, 0.9)})
        builder.block("b", 4, 10, 4, 10)
        builder.net("n1", ("a", "d"), ("b", "c"))
        builder.symmetry("pair", pairs=[("a", "b")])
        circuit = builder.build()
        assert circuit.block("a").pin("d").fy == 0.9
        assert len(circuit.symmetry_groups) == 1

    def test_builder_rejects_unknown_pin(self):
        builder = CircuitBuilder("bad")
        builder.block("a", 4, 10, 4, 10)
        builder.block("b", 4, 10, 4, 10)
        with pytest.raises(KeyError):
            builder.net("n1", ("a", "nonexistent"), ("b", "c"))

    def test_symmetry_with_unknown_block_rejected(self):
        builder = CircuitBuilder("bad")
        builder.block("a", 4, 10, 4, 10)
        with pytest.raises(ValueError):
            builder.symmetry("pair", pairs=[("a", "zz")])


class TestValidation:
    def test_valid_circuit_passes(self):
        validate_circuit(small_circuit())

    def test_empty_circuit_fails(self):
        problems = collect_problems(Circuit("empty"))
        assert any("no blocks" in p for p in problems)

    def test_dangling_single_terminal_net_flagged(self):
        circuit = small_circuit()
        circuit.nets.append(Net("dangling", (Terminal("a"),)))
        with pytest.raises(CircuitValidationError) as excinfo:
            validate_circuit(circuit)
        assert "dangling" in str(excinfo.value)

    def test_external_single_terminal_net_allowed(self):
        circuit = small_circuit()
        circuit.add_net(Net("pad", (Terminal("a"),), external=True))
        validate_circuit(circuit)
