"""Tests for symmetry groups and their mismatch measure."""

import pytest

from repro.circuit.symmetry import SymmetryGroup
from repro.geometry.rect import Rect


class TestSymmetryGroup:
    def test_requires_some_constraint(self):
        with pytest.raises(ValueError):
            SymmetryGroup("empty")

    def test_blocks_listing(self):
        group = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("c",))
        assert set(group.blocks()) == {"a", "b", "c"}

    def test_perfectly_mirrored_pair_has_zero_mismatch(self):
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 0, 4, 4)}
        assert group.mismatch(rects) == pytest.approx(0.0)

    def test_vertical_misalignment_penalised(self):
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        rects = {"a": Rect(0, 0, 4, 4), "b": Rect(10, 6, 4, 4)}
        assert group.mismatch(rects) == pytest.approx(6.0)

    def test_self_symmetric_block_off_axis(self):
        group = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("c",))
        rects = {
            "a": Rect(0, 0, 4, 4),
            "b": Rect(10, 0, 4, 4),
            "c": Rect(20, 0, 4, 4),
        }
        # Pair midpoint is x=7, block c center is x=22: the shared axis sits
        # between them, so both contribute mismatch.
        assert group.mismatch(rects) > 0.0

    def test_missing_blocks_ignored(self):
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        assert group.mismatch({"a": Rect(0, 0, 4, 4)}) == 0.0

    def test_best_axis_of_empty_layout(self):
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        assert group.best_axis({}) == 0.0
