"""Tests for nets, terminals and pins."""

import pytest

from repro.circuit.net import Net, Terminal, make_net
from repro.circuit.pin import Pin
from repro.geometry.rect import Rect


class TestPin:
    def test_position_in_rect(self):
        pin = Pin("d", 0.25, 0.75)
        assert pin.position(Rect(0, 0, 8, 4)) == (2.0, 3.0)

    def test_out_of_range_offsets_rejected(self):
        with pytest.raises(ValueError):
            Pin("d", 1.5, 0.5)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Pin("")


class TestTerminal:
    def test_defaults_to_center_pin(self):
        assert Terminal("m1").pin == "c"

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            Terminal("")


class TestNet:
    def test_basic_net(self):
        net = Net("n1", (Terminal("a"), Terminal("b")))
        assert net.num_terminals == 2
        assert net.degree == 2
        assert net.blocks() == ("a", "b")

    def test_external_net_counts_io_in_degree(self):
        net = Net("n1", (Terminal("a"),), external=True)
        assert net.num_terminals == 1
        assert net.degree == 2

    def test_net_without_terminals_must_be_external(self):
        with pytest.raises(ValueError):
            Net("n1", ())
        assert Net("pad", (), external=True).num_terminals == 0

    def test_duplicate_blocks_deduplicated_in_blocks(self):
        net = Net("n1", (Terminal("a", "d"), Terminal("a", "g"), Terminal("b")))
        assert net.blocks() == ("a", "b")
        assert net.num_terminals == 3

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            Net("n1", (Terminal("a"), Terminal("b")), weight=0.0)

    def test_io_position_validated(self):
        with pytest.raises(ValueError):
            Net("n1", (Terminal("a"),), external=True, io_position=(2.0, 0.0))

    def test_with_weight(self):
        net = Net("n1", (Terminal("a"), Terminal("b")))
        heavier = net.with_weight(3.0)
        assert heavier.weight == 3.0
        assert heavier.terminals == net.terminals

    def test_make_net_helper(self):
        net = make_net("n1", ("a", "d"), ("b", "g"), weight=2.0)
        assert net.num_terminals == 2
        assert net.terminals[0] == Terminal("a", "d")
        assert net.weight == 2.0
