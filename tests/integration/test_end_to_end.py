"""End-to-end integration tests: generate once, use many times (Figure 1)."""

import random

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from repro.core.serialization import load_structure, save_structure
from repro.experiments.runner import build_report
from repro.experiments.config import SMOKE


class TestGenerateOnceUseMany:
    def test_full_flow_on_opamp(self, tmp_path):
        # 1. One-time generation (Figure 1.a).
        circuit = get_benchmark("two_stage_opamp")
        generator = MultiPlacementGenerator(circuit, GeneratorConfig.smoke(seed=0))
        result = generator.generate_with_stats()
        structure = result.structure
        structure.check_invariants()
        assert structure.num_placements >= 1

        # 2. Persist and reload (generated once, reused across sessions).
        path = save_structure(structure, tmp_path / "opamp.json")
        reloaded = load_structure(path)
        reloaded.check_invariants()

        # 3. Repeated instantiation inside a sizing loop (Figure 1.b).
        instantiator = PlacementInstantiator(reloaded)
        rng = random.Random(1)
        for _ in range(25):
            dims = [
                (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
                for b in circuit.blocks
            ]
            placement = instantiator.instantiate(dims)
            rects = list(placement.rects.values())
            # Every instantiation is a legal floorplan.
            for i in range(len(rects)):
                for j in range(i + 1, len(rects)):
                    assert not rects[i].intersects(rects[j])
            assert placement.total_cost > 0

    def test_every_benchmark_generates_a_usable_structure(self):
        # Keep this cheap: the three circuit sizes bracket the benchmark suite.
        for name in ("circ01", "mixer", "tso_cascode"):
            circuit = get_benchmark(name)
            config = GeneratorConfig.smoke(seed=1)
            structure = MultiPlacementGenerator(circuit, config).generate()
            structure.check_invariants()
            mid_dims = [
                ((b.min_w + b.max_w) // 2, (b.min_h + b.max_h) // 2) for b in circuit.blocks
            ]
            placement = structure.instantiate(mid_dims)
            assert len(placement.rects) == circuit.num_blocks


class TestReportRunner:
    def test_build_report_contains_all_sections(self):
        report = build_report(SMOKE, seed=0, include_synthesis=False)
        assert "Table 1" in report
        assert "Table 2" in report
        assert "Figure 5" in report
        assert "Figure 6" in report
        assert "Figure 7" in report
