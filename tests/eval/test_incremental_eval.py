"""Tests for the incremental evaluation engine (LayoutState + IncrementalEvaluator).

The heart of the suite is the property-style randomized check: hundreds of
moves, dimension changes, anchor swaps, commits and reverts on benchmark
circuits — with *every* weight component enabled — asserting at every step
that the incremental totals match ``evaluate_layout`` from scratch.
"""

import random

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.cost.cost_function import CostBreakdown, CostWeights, PlacementCostFunction
from repro.eval import IncrementalEvaluator, LayoutState
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from tests.conftest import build_chain_circuit

#: Every component enabled so no penalty path escapes the comparison.
ALL_WEIGHTS = CostWeights(
    wirelength=1.0,
    area=0.05,
    overlap=50.0,
    out_of_bounds=50.0,
    symmetry=2.0,
    aspect_ratio=1.5,
    routability=0.5,
)


def bound_cost_function(circuit, weights=ALL_WEIGHTS, model="hpwl"):
    bounds = FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=2.0)
    return PlacementCostFunction(circuit, bounds, weights=weights, wirelength_model=model)


def random_layout(circuit, bounds, rng):
    dims = [
        (rng.randint(block.min_w, block.max_w), rng.randint(block.min_h, block.max_h))
        for block in circuit.blocks
    ]
    anchors = [
        (rng.randint(0, max(0, bounds.width - w)), rng.randint(0, max(0, bounds.height - h)))
        for (w, h) in dims
    ]
    return anchors, dims


def assert_breakdowns_close(actual: CostBreakdown, expected: CostBreakdown, tol=1e-6):
    for key, value in actual.as_dict().items():
        assert value == pytest.approx(expected.as_dict()[key], abs=tol), key


class TestRandomizedEquivalence:
    """Incremental and from-scratch evaluation agree move for move."""

    @pytest.mark.parametrize("name", ["circ08", "two_stage_opamp", "tso_cascode"])
    @pytest.mark.parametrize("model", ["hpwl", "star"])
    def test_random_walk_matches_full_evaluation(self, name, model):
        circuit = get_benchmark(name)
        cost_fn = bound_cost_function(circuit, model=model)
        bounds = cost_fn.bounds
        rng = random.Random(sum(map(ord, name + model)))
        anchors, dims = random_layout(circuit, bounds, rng)
        evaluator = cost_fn.bind(anchors, dims, resync_interval=64)
        assert_breakdowns_close(evaluator.breakdown, cost_fn.evaluate_layout(anchors, dims))

        n = circuit.num_blocks
        steps = 500 if name == "circ08" else 200
        for _ in range(steps):
            new_anchors, new_dims = list(anchors), list(dims)
            op = rng.random()
            if op < 0.45:
                # Translate one block (moves may leave the canvas or overlap).
                index = rng.randrange(n)
                new_anchors[index] = (
                    rng.randint(-4, bounds.width),
                    rng.randint(-4, bounds.height),
                )
                updates = [(index, new_anchors[index], None)]
            elif op < 0.7:
                # Resize one block within its bounds.
                index = rng.randrange(n)
                block = circuit.blocks[index]
                new_dims[index] = (
                    rng.randint(block.min_w, block.max_w),
                    rng.randint(block.min_h, block.max_h),
                )
                updates = [(index, None, new_dims[index])]
            elif op < 0.85:
                # Swap two blocks' anchors (one transaction, two updates).
                i, j = rng.sample(range(n), 2)
                new_anchors[i], new_anchors[j] = new_anchors[j], new_anchors[i]
                updates = [(i, new_anchors[i], None), (j, new_anchors[j], None)]
            else:
                # Compound move: translate and resize a handful of blocks.
                updates = []
                for index in rng.sample(range(n), min(3, n)):
                    block = circuit.blocks[index]
                    new_anchors[index] = (rng.randint(0, bounds.width), rng.randint(0, bounds.height))
                    new_dims[index] = (
                        rng.randint(block.min_w, block.max_w),
                        rng.randint(block.min_h, block.max_h),
                    )
                    updates.append((index, new_anchors[index], new_dims[index]))

            total = evaluator.propose(updates)
            expected = cost_fn.evaluate_layout(new_anchors, new_dims)
            assert total == pytest.approx(expected.total, abs=1e-6)
            if rng.random() < 0.5:
                evaluator.commit()
                anchors, dims = new_anchors, new_dims
            else:
                evaluator.revert()
                reverted = cost_fn.evaluate_layout(anchors, dims)
                assert evaluator.total == pytest.approx(reverted.total, abs=1e-6)
        # Final state: every component matches, not just the total.
        assert_breakdowns_close(evaluator.breakdown, cost_fn.evaluate_layout(anchors, dims))
        stats = evaluator.stats()
        assert stats["moves"] == steps
        assert stats["commits"] + stats["reverts"] == steps
        assert stats["resyncs"] == stats["commits"] // 64

    def test_default_weight_components_match_exactly(self):
        """With the paper's default weights, totals agree bitwise."""
        circuit = get_benchmark("circ06")
        cost_fn = bound_cost_function(circuit, weights=CostWeights())
        bounds = cost_fn.bounds
        rng = random.Random(11)
        anchors, dims = random_layout(circuit, bounds, rng)
        evaluator = cost_fn.bind(anchors, dims)
        for _ in range(100):
            index = rng.randrange(circuit.num_blocks)
            anchor = (rng.randint(0, bounds.width), rng.randint(0, bounds.height))
            total = evaluator.propose([(index, anchor, None)])
            new_anchors = list(anchors)
            new_anchors[index] = anchor
            assert total == cost_fn.evaluate_layout(new_anchors, dims).total
            evaluator.commit()
            anchors = new_anchors


class TestEvaluatorApi:
    def test_bind_validates_lengths(self):
        circuit = build_chain_circuit(4)
        cost_fn = bound_cost_function(circuit)
        with pytest.raises(ValueError):
            cost_fn.bind([(0, 0)], [(4, 4)] * 4)

    def test_double_propose_rejected(self):
        circuit = build_chain_circuit(3)
        cost_fn = bound_cost_function(circuit)
        evaluator = cost_fn.bind([(0, 0), (10, 0), (20, 0)], [(4, 4)] * 3)
        evaluator.propose([(0, (1, 1), None)])
        with pytest.raises(RuntimeError):
            evaluator.propose([(1, (2, 2), None)])
        evaluator.revert()
        with pytest.raises(RuntimeError):
            evaluator.revert()
        with pytest.raises(RuntimeError):
            evaluator.commit()

    def test_empty_proposal_keeps_cost(self):
        circuit = build_chain_circuit(3)
        cost_fn = bound_cost_function(circuit)
        evaluator = cost_fn.bind([(0, 0), (10, 0), (20, 0)], [(4, 4)] * 3)
        before = evaluator.total
        assert evaluator.propose([]) == before
        evaluator.commit()
        assert evaluator.total == before

    def test_rebase_scores_whole_layouts(self):
        circuit = build_chain_circuit(4)
        cost_fn = bound_cost_function(circuit)
        anchors = [(0, 0), (10, 0), (20, 0), (0, 10)]
        dims = [(4, 4)] * 4
        evaluator = cost_fn.bind(anchors, dims)
        other = [(2, 2), (10, 0), (18, 4), (0, 10)]
        total = evaluator.rebase(anchors=other)
        assert total == pytest.approx(cost_fn.evaluate_layout(other, dims).total, abs=1e-9)
        assert evaluator.anchors() == tuple(other)
        with pytest.raises(ValueError):
            evaluator.rebase(anchors=[(0, 0)])

    def test_resync_preserves_totals(self):
        circuit = get_benchmark("two_stage_opamp")
        cost_fn = bound_cost_function(circuit)
        rng = random.Random(3)
        anchors, dims = random_layout(circuit, cost_fn.bounds, rng)
        evaluator = cost_fn.bind(anchors, dims)
        before = evaluator.total
        evaluator.resync()
        assert evaluator.total == pytest.approx(before, abs=1e-9)
        assert evaluator.stats()["resyncs"] == 1

    def test_duplicate_indices_in_one_proposal_revert_cleanly(self):
        """A proposal listing the same block twice must roll back exactly."""
        circuit = build_chain_circuit(3)
        cost_fn = bound_cost_function(circuit)
        anchors = [(0, 0), (10, 0), (20, 0)]
        dims = [(4, 4)] * 3
        evaluator = cost_fn.bind(anchors, dims)
        before = evaluator.total
        bounds = cost_fn.bounds
        # Both updates push block 0 out of bounds, journalling two oob entries.
        evaluator.propose([(0, (bounds.width - 2, bounds.height - 2), None), (0, (-3, -3), None)])
        evaluator.revert()
        assert evaluator.total == before
        # The next move of the same block must price from clean caches.
        total = evaluator.propose([(0, (1, 1), None)])
        fresh = cost_fn.evaluate_layout([(1, 1), (10, 0), (20, 0)], dims)
        assert total == pytest.approx(fresh.total, abs=1e-9)

    def test_bind_rejects_overriding_subclasses(self):
        class CustomCost(PlacementCostFunction):
            def evaluate(self, rects):
                breakdown = super().evaluate(rects)
                return breakdown

        circuit = build_chain_circuit(3)
        custom = CustomCost(circuit, FloorplanBounds(40, 40))
        assert not custom.supports_incremental
        with pytest.raises(TypeError):
            custom.bind([(0, 0), (5, 0), (10, 0)], [(4, 4)] * 3)

    def test_bind_rejects_rects_from_override(self):
        """rects_from shapes the layout the evaluator prices — overriding it
        must force the from-scratch path too."""

        class SnappingCost(PlacementCostFunction):
            def rects_from(self, anchors, dims):
                snapped = [((x // 2) * 2, (y // 2) * 2) for (x, y) in anchors]
                return super().rects_from(snapped, dims)

        circuit = build_chain_circuit(3)
        assert not SnappingCost(circuit).supports_incremental

    def test_plain_cost_function_supports_incremental(self):
        circuit = build_chain_circuit(3)
        assert PlacementCostFunction(circuit).supports_incremental


class TestLayoutState:
    def test_rollback_restores_everything(self):
        circuit = get_benchmark("circ08")
        bounds = FloorplanBounds.for_blocks(circuit.max_dims())
        rng = random.Random(9)
        dims = circuit.min_dims()
        rects = [
            Rect(rng.randint(0, bounds.width - w), rng.randint(0, bounds.height - h), w, h)
            for (w, h) in dims
        ]
        state = LayoutState(
            circuit,
            bounds,
            rects,
            track_overlap=True,
            track_out_of_bounds=True,
            track_symmetry=True,
            track_routability=True,
        )
        snapshot = (
            state.rects(),
            state.wirelength(),
            state.overlap(),
            state.out_of_bounds(),
            state.routability(),
        )
        state.apply([(0, Rect(-3, -3, 8, 8)), (1, Rect(5, 5, 10, 10))])
        assert state.in_transaction
        state.rollback()
        assert not state.in_transaction
        assert (
            state.rects(),
            state.wirelength(),
            state.overlap(),
            state.out_of_bounds(),
            state.routability(),
        ) == snapshot

    def test_double_transaction_rejected(self):
        circuit = build_chain_circuit(2)
        state = LayoutState(circuit, FloorplanBounds(30, 30), [Rect(0, 0, 4, 4), Rect(10, 0, 4, 4)])
        state.apply([(0, Rect(1, 1, 4, 4))])
        with pytest.raises(RuntimeError):
            state.apply([(1, Rect(2, 2, 4, 4))])
        with pytest.raises(RuntimeError):
            state.refresh()
        state.commit()
        with pytest.raises(RuntimeError):
            state.commit()

    def test_wrong_rect_count_rejected(self):
        circuit = build_chain_circuit(3)
        with pytest.raises(ValueError):
            LayoutState(circuit, FloorplanBounds(30, 30), [Rect(0, 0, 4, 4)])
