"""The delta-evaluation paths reproduce the from-scratch optimizers exactly.

Each optimizer is run twice with the same seed — once through the
incremental engine, once through full re-evaluation — and must produce
bit-identical results: the delta path changes how the cost is computed,
never what the optimizer sees.
"""

from dataclasses import replace

import pytest

from repro.baselines.annealing_placer import AnnealingPlacer, AnnealingPlacerConfig
from repro.baselines.genetic import GeneticPlacer, GeneticPlacerConfig
from repro.benchcircuits.library import get_benchmark
from repro.core.bdio import BDIOConfig, BlockDimensionsIntervalOptimizer
from repro.core.expansion import expand_placement
from repro.cost.cost_function import PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.packing import shelf_pack


@pytest.fixture
def circuit():
    return get_benchmark("circ08")


@pytest.fixture
def bounds(circuit):
    return FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=2.0)


def mid_dims(circuit):
    return [((b.min_w + b.max_w) // 2, (b.min_h + b.max_h) // 2) for b in circuit.blocks]


class TestAnnealingPlacerEquivalence:
    def test_same_seed_same_trajectory(self, circuit, bounds):
        dims = mid_dims(circuit)
        config = AnnealingPlacerConfig(max_iterations=500)
        incremental = AnnealingPlacer(circuit, bounds, config=config, seed=7).place(dims)
        scratch = AnnealingPlacer(
            circuit, bounds, config=replace(config, incremental=False), seed=7
        ).place(dims)
        assert incremental.cost.total == scratch.cost.total
        assert dict(incremental.rects) == dict(scratch.rects)

    def test_delta_counters_reported(self, circuit, bounds):
        placer = AnnealingPlacer(
            circuit, bounds, config=AnnealingPlacerConfig(max_iterations=200), seed=0
        )
        placer.place(mid_dims(circuit))
        stats = placer.stats()
        assert stats["delta_moves"] == 200
        assert stats["delta_commits"] + stats["delta_reverts"] == 200


class TestBDIOEquivalence:
    def test_same_seed_same_result(self, circuit, bounds):
        anchors = shelf_pack(circuit.min_dims(), max_width=bounds.width)
        ranges = expand_placement(circuit, anchors, bounds)
        assert ranges is not None
        cost_fn = PlacementCostFunction(circuit, bounds)
        config = BDIOConfig(max_iterations=250)
        incremental = BlockDimensionsIntervalOptimizer(cost_fn, config, seed=3).optimize(
            anchors, ranges
        )
        scratch = BlockDimensionsIntervalOptimizer(
            cost_fn, replace(config, incremental=False), seed=3
        ).optimize(anchors, ranges)
        assert incremental.best_cost == scratch.best_cost
        assert incremental.average_cost == scratch.average_cost
        assert incremental.best_dims == scratch.best_dims
        assert incremental.reduced_ranges == scratch.reduced_ranges
        # The delta path reports its counters; the scratch path reports none.
        assert incremental.eval_stats["moves"] == 250
        assert scratch.eval_stats == {}


class TestGeneticPlacerEquivalence:
    def test_same_seed_same_population_outcome(self, circuit, bounds):
        dims = mid_dims(circuit)
        config = GeneticPlacerConfig(population_size=10, generations=8, vectorize=False)
        incremental = GeneticPlacer(circuit, bounds, config=config, seed=5).place(dims)
        scratch = GeneticPlacer(
            circuit, bounds, config=replace(config, incremental=False), seed=5
        ).place(dims)
        assert incremental.cost.total == scratch.cost.total
        assert dict(incremental.rects) == dict(scratch.rects)

    def test_delta_counters_reported(self, circuit, bounds):
        placer = GeneticPlacer(
            circuit,
            bounds,
            config=GeneticPlacerConfig(population_size=8, generations=4, vectorize=False),
            seed=1,
        )
        placer.place(mid_dims(circuit))
        stats = placer.stats()
        assert stats["delta_moves"] > 0
        assert stats["delta_moves"] == stats["delta_commits"]


class TestGeneticVectorizedEquivalence:
    """Array-batch population scoring leaves fixed-seed trajectories intact."""

    def test_vectorized_trajectory_bit_identical(self, circuit, bounds):
        pytest.importorskip("numpy")
        dims = mid_dims(circuit)
        config = GeneticPlacerConfig(population_size=10, generations=8)
        vectorized = GeneticPlacer(
            circuit, bounds, config=replace(config, vectorize=True), seed=5
        )
        scalar = GeneticPlacer(
            circuit, bounds, config=replace(config, vectorize=False, incremental=False), seed=5
        )
        a = vectorized.place(dims)
        b = scalar.place(dims)
        assert a.cost == b.cost  # every component, bit for bit
        assert dict(a.rects) == dict(b.rects)

    def test_vectorized_trajectory_matches_incremental(self, circuit, bounds):
        pytest.importorskip("numpy")
        dims = mid_dims(circuit)
        config = GeneticPlacerConfig(population_size=10, generations=6)
        a = GeneticPlacer(
            circuit, bounds, config=replace(config, vectorize=True), seed=2
        ).place(dims)
        b = GeneticPlacer(
            circuit, bounds, config=replace(config, vectorize=False, incremental=True), seed=2
        ).place(dims)
        assert a.cost.total == b.cost.total
        assert dict(a.rects) == dict(b.rects)

    def test_vector_counters_reported(self, circuit, bounds, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        config = GeneticPlacerConfig(population_size=8, generations=4)
        placer = GeneticPlacer(circuit, bounds, config=config, seed=1)
        placer.place(mid_dims(circuit))
        stats = placer.stats()
        # One sweep per scored generation: the initial population plus one
        # per evolved generation; every sweep scores the whole population.
        assert stats["batch_evals"] == config.generations + 1
        assert stats["batch_candidates"] == (config.generations + 1) * config.population_size
        assert "delta_moves" not in stats

    def test_env_gate_reports_fallbacks(self, circuit, bounds, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        config = GeneticPlacerConfig(population_size=8, generations=3, incremental=False)
        placer = GeneticPlacer(circuit, bounds, config=config, seed=1)
        placer.place(mid_dims(circuit))
        stats = placer.stats()
        assert stats["vector_fallbacks"] == config.generations + 1
        assert "batch_evals" not in stats


class TestCustomCostFallback:
    def test_overriding_subclass_falls_back_to_scratch_path(self, circuit, bounds):
        """A custom evaluate() keeps working — the placer skips the delta path."""

        class TaxedCost(PlacementCostFunction):
            def evaluate(self, rects):
                breakdown = super().evaluate(rects)
                return type(breakdown)(
                    total=breakdown.total + 1.0,
                    wirelength=breakdown.wirelength,
                    area=breakdown.area,
                    overlap=breakdown.overlap,
                    out_of_bounds=breakdown.out_of_bounds,
                    symmetry=breakdown.symmetry,
                    aspect_ratio=breakdown.aspect_ratio,
                    routability=breakdown.routability,
                )

        placer = AnnealingPlacer(
            circuit, bounds, config=AnnealingPlacerConfig(max_iterations=60), seed=0
        )
        # Swap in the custom cost the way subclassing callers do.
        placer._anneal_cost = TaxedCost(circuit, bounds, weights=placer._anneal_cost.weights)
        result = placer.place(mid_dims(circuit))
        assert result.cost.total > 0
        assert "delta_moves" not in placer.stats()
