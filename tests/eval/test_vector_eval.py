"""The vectorized batch kernels reproduce the scalar cost oracle bitwise.

Every test compares :class:`~repro.eval.BatchEvaluator` output against
``PlacementCostFunction.evaluate_layout`` with *exact* float equality —
dataclass ``==`` on :class:`CostBreakdown` compares every component bit
for bit.  Randomized layouts include negative anchors, out-of-bounds and
heavily overlapping placements, so each penalty term is exercised off its
zero branch.
"""

import random

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.core.instantiator import PlacementInstantiator
from repro.core.intervals import Interval
from repro.core.placement_entry import DimensionRange
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.eval.batch import (
    batch_eval_stats,
    batch_evaluator_for,
    reset_batch_eval_stats,
    score_breakdowns,
    score_totals,
    vectorize_enabled,
)
from repro.eval.vector import VECTORIZABLE_MODELS, BatchEvaluator, numpy_available
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.overlap import any_overlap
from repro.geometry.rect import Rect
from tests.conftest import build_chain_circuit

np = pytest.importorskip("numpy")

ALL_WEIGHTS = CostWeights(
    wirelength=1.0,
    area=0.05,
    overlap=7.5,
    out_of_bounds=11.0,
    symmetry=3.0,
    aspect_ratio=0.75,
    routability=0.125,
)


def build_rich_circuit(seed: int = 0, num_blocks: int = 7):
    """A circuit with off-center pins, weighted/external nets and symmetry."""
    rng = random.Random(seed)
    builder = CircuitBuilder(f"rich{seed}")
    for i in range(num_blocks):
        builder.block(
            f"b{i}",
            3,
            10,
            3,
            10,
            pins={
                "c": (0.5, 0.5),
                "p": (round(rng.random(), 2), round(rng.random(), 2)),
            },
        )
    # Nets of degree 1..4 with non-unit weights; the degree-1 case is the
    # external net, where the I/O point makes it a legal 2-point net.
    names = [f"b{i}" for i in range(num_blocks)]
    for n in range(6):
        degree = rng.randint(1, 4) if n == 0 else rng.randint(2, 4)
        attached = rng.sample(names, degree)
        builder.net(
            f"n{n}",
            *[(block, rng.choice(["c", "p"])) for block in attached],
            weight=round(0.5 + rng.random(), 2),
            external=(n == 0),
            io_position=(0.0, 0.25),
        )
    builder.symmetry("g0", pairs=[("b0", "b1")], self_symmetric=["b2"])
    builder.symmetry("g1", pairs=[("b3", "b4"), ("b5", "b6")])
    return builder.build()


def random_layouts(circuit, bounds, rng, count):
    """Anchors/dims batches spanning legal, overlapping and out-of-bounds."""
    anchors_batch, dims_batch = [], []
    for _ in range(count):
        anchors, dims = [], []
        for block in circuit.blocks:
            w = rng.randint(block.min_w, block.max_w)
            h = rng.randint(block.min_h, block.max_h)
            anchors.append((rng.randint(-5, bounds.width - 2), rng.randint(-5, bounds.height - 2)))
            dims.append((w, h))
        anchors_batch.append(tuple(anchors))
        dims_batch.append(tuple(dims))
    return anchors_batch, dims_batch


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("model", sorted(VECTORIZABLE_MODELS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_terms_match_scalar_oracle_exactly(self, model, seed):
        circuit = build_rich_circuit(seed)
        bounds = FloorplanBounds(48, 40)
        cost = PlacementCostFunction(
            circuit, bounds, weights=ALL_WEIGHTS, wirelength_model=model
        )
        evaluator = cost.batch()
        rng = random.Random(100 + seed)
        anchors_batch, dims_batch = random_layouts(circuit, bounds, rng, 23)
        batch = evaluator.evaluate_batch(evaluator.stack(anchors_batch, dims_batch))
        for i, (anchors, dims) in enumerate(zip(anchors_batch, dims_batch)):
            assert batch.breakdown(i) == cost.evaluate_layout(anchors, dims)

    @pytest.mark.parametrize("model", sorted(VECTORIZABLE_MODELS))
    def test_no_bounds_cost_matches(self, model):
        # Without bounds there is no external I/O point, no out-of-bounds
        # term and no RUDY grid — those terms gate off exactly as scalar.
        circuit = build_rich_circuit(3)
        cost = PlacementCostFunction(
            circuit, None, weights=ALL_WEIGHTS, wirelength_model=model
        )
        evaluator = cost.batch()
        rng = random.Random(7)
        anchors_batch, dims_batch = random_layouts(circuit, FloorplanBounds(48, 40), rng, 9)
        batch = evaluator.evaluate_batch(evaluator.stack(anchors_batch, dims_batch))
        for i, (anchors, dims) in enumerate(zip(anchors_batch, dims_batch)):
            assert batch.breakdown(i) == cost.evaluate_layout(anchors, dims)

    def test_shared_dims_broadcast_matches_per_candidate(self):
        circuit = build_chain_circuit(4)
        bounds = FloorplanBounds(60, 60)
        cost = PlacementCostFunction(circuit, bounds, weights=ALL_WEIGHTS)
        evaluator = cost.batch()
        rng = random.Random(5)
        anchors_batch, _ = random_layouts(circuit, bounds, rng, 11)
        dims = tuple((6, 7) for _ in circuit.blocks)
        shared = evaluator.totals(evaluator.stack(anchors_batch, dims))
        per_candidate = evaluator.totals(
            evaluator.stack(anchors_batch, [dims] * len(anchors_batch))
        )
        assert shared.tolist() == per_candidate.tolist()
        for total, anchors in zip(shared.tolist(), anchors_batch):
            assert total == cost.evaluate_layout(anchors, dims).total

    def test_chunked_evaluation_matches_unchunked(self):
        circuit = build_chain_circuit(3)
        bounds = FloorplanBounds(60, 60)
        cost = PlacementCostFunction(circuit, bounds, weights=ALL_WEIGHTS)
        evaluator = cost.batch()
        rng = random.Random(9)
        anchors_batch, dims_batch = random_layouts(circuit, bounds, rng, 17)
        rects = evaluator.stack(anchors_batch, dims_batch)
        whole = evaluator.evaluate_batch(rects)
        evaluator._chunk = 4  # force the candidate-slice path
        sliced = evaluator.evaluate_batch(rects)
        assert whole.total.tolist() == sliced.total.tolist()
        assert whole.routability.tolist() == sliced.routability.tolist()
        assert len(sliced) == 17

    def test_empty_batch(self):
        circuit = build_chain_circuit(3)
        cost = PlacementCostFunction(circuit, FloorplanBounds(60, 60))
        evaluator = cost.batch()
        rects = evaluator.stack(np.zeros((0, 3, 2), dtype=np.int64), [(5, 5)] * 3)
        batch = evaluator.evaluate_batch(rects)
        assert len(batch) == 0
        assert evaluator.feasible_mask(rects).shape == (0,)

    def test_breakdown_helpers(self):
        circuit = build_chain_circuit(3)
        bounds = FloorplanBounds(60, 60)
        cost = PlacementCostFunction(circuit, bounds)
        evaluator = cost.batch()
        anchors_batch = [((0, 0), (20, 0), (40, 0)), ((0, 0), (6, 0), (12, 0))]
        dims = [(5, 5)] * 3
        batch = evaluator.evaluate_batch(evaluator.stack(anchors_batch, dims))
        assert len(batch.breakdowns()) == 2
        totals = batch.total
        assert batch.best_index() == (0 if totals[0] < totals[1] else 1)


class TestFeasibleMask:
    def test_matches_scalar_legality_checks(self):
        circuit = build_rich_circuit(11)
        bounds = FloorplanBounds(48, 40)
        cost = PlacementCostFunction(circuit, bounds)
        evaluator = cost.batch()
        rng = random.Random(13)
        anchors_batch, dims_batch = random_layouts(circuit, bounds, rng, 40)
        mask = evaluator.feasible_mask(evaluator.stack(anchors_batch, dims_batch))
        hits = 0
        for got, anchors, dims in zip(mask.tolist(), anchors_batch, dims_batch):
            rects = [Rect(x, y, w, h) for (x, y), (w, h) in zip(anchors, dims)]
            expected = all(bounds.contains(r) for r in rects) and not any_overlap(rects)
            assert got == expected
            hits += got
        # The random batch must exercise both branches.
        assert 0 < hits < len(anchors_batch) or len(anchors_batch) == 0

    def test_requires_bounds(self):
        circuit = build_chain_circuit(2)
        evaluator = PlacementCostFunction(circuit, None).batch()
        with pytest.raises(ValueError, match="bounds"):
            evaluator.feasible_mask(
                evaluator.stack([((0, 0), (10, 0))], [(5, 5), (5, 5)])
            )


class TestValidation:
    @pytest.fixture
    def evaluator(self):
        return PlacementCostFunction(build_chain_circuit(3), FloorplanBounds(60, 60)).batch()

    def test_wrong_block_count_rejected(self, evaluator):
        with pytest.raises(ValueError, match="shape"):
            evaluator.stack([((0, 0), (5, 0))], [(5, 5)] * 3)

    def test_wrong_dims_shape_rejected(self, evaluator):
        with pytest.raises(ValueError, match="dims"):
            evaluator.stack([((0, 0), (5, 0), (10, 0))], [(5, 5)] * 2)

    def test_float_tensor_rejected(self, evaluator):
        rects = np.zeros((2, 3, 4), dtype=np.float64)
        with pytest.raises(TypeError, match="integer"):
            evaluator.evaluate_batch(rects)

    def test_negative_dims_rejected(self, evaluator):
        rects = np.zeros((1, 3, 4), dtype=np.int64)
        rects[0, 1, 2] = -3
        with pytest.raises(ValueError, match="non-negative"):
            evaluator.evaluate_batch(rects)

    def test_mst_model_rejected(self):
        cost = PlacementCostFunction(
            build_chain_circuit(3), FloorplanBounds(60, 60), wirelength_model="mst"
        )
        with pytest.raises(ValueError, match="mst"):
            cost.batch()
        assert batch_evaluator_for(cost) is None

    def test_overriding_subclass_rejected(self):
        class TaxedCost(PlacementCostFunction):
            def evaluate(self, rects):
                breakdown = super().evaluate(rects)
                return type(breakdown)(**{**breakdown.as_dict()})

        cost = TaxedCost(build_chain_circuit(3), FloorplanBounds(60, 60))
        assert not cost.supports_vectorized
        with pytest.raises(TypeError, match="array-evaluated"):
            BatchEvaluator(cost)
        assert batch_evaluator_for(cost) is None

    def test_overriding_compose_rejected(self):
        class ComposeCost(PlacementCostFunction):
            @staticmethod
            def compose(weights, wirelength, area, **terms):
                return PlacementCostFunction.compose(weights, wirelength, area, **terms)

        cost = ComposeCost(build_chain_circuit(3), FloorplanBounds(60, 60))
        assert cost.supports_incremental
        assert not cost.supports_vectorized
        assert batch_evaluator_for(cost) is None


class TestPathSelectionAndCounters:
    def test_env_gate_forces_scalar_fallback(self, monkeypatch, chain_cost_function):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert not vectorize_enabled()
        assert batch_evaluator_for(chain_cost_function) is None
        reset_batch_eval_stats()
        anchors = [((0, 0), (10, 0), (20, 0), (30, 0))]
        dims = [(5, 5)] * 4
        totals, used_vector = score_totals(chain_cost_function, anchors, dims)
        assert not used_vector
        assert totals == [chain_cost_function.evaluate_layout(anchors[0], dims).total]
        stats = batch_eval_stats()
        assert stats["vector_fallbacks"] == 1
        assert stats["batch_evals"] == 0

    def test_vector_path_counts_batches(self, monkeypatch, chain_cost_function):
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        reset_batch_eval_stats()
        anchors = [
            ((0, 0), (10, 0), (20, 0), (30, 0)),
            ((0, 0), (6, 0), (12, 0), (18, 0)),
        ]
        dims = [(5, 5)] * 4
        totals, used_vector = score_totals(chain_cost_function, anchors, dims)
        assert used_vector
        breakdowns, _ = score_breakdowns(chain_cost_function, anchors, dims)
        for total, breakdown, anchor_vec in zip(totals, breakdowns, anchors):
            scalar = chain_cost_function.evaluate_layout(anchor_vec, dims)
            assert total == scalar.total
            assert breakdown == scalar
        stats = batch_eval_stats()
        assert stats["batch_evals"] == 2
        assert stats["batch_candidates"] == 4
        assert stats["vector_fallbacks"] == 0

    def test_evaluator_cached_per_cost_function(self, monkeypatch, chain_cost_function):
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        first = batch_evaluator_for(chain_cost_function)
        assert first is not None
        assert batch_evaluator_for(chain_cost_function) is first


class TestInstantiatorVectorPath:
    @staticmethod
    def build_structure(n_stored=6):
        circuit = build_chain_circuit(3)
        structure = MultiPlacementStructure(circuit, FloorplanBounds(80, 80))
        rng = random.Random(7)
        for k in range(n_stored):
            xs = sorted(rng.sample(range(0, 60, 4), 3))
            best = 9.0 + rng.random() * 5
            structure.add_placement(
                anchors=[(x, rng.randrange(0, 40, 2)) for x in xs],
                ranges=[DimensionRange(Interval(4, 8), Interval(4, 8)) for _ in range(3)],
                average_cost=best + 1.0,
                best_cost=best,
                best_dims=[(6, 6)] * 3,
            )
        structure.set_fallback([(0, 60), (25, 60), (50, 60)])
        return structure

    @staticmethod
    def queries(count=30):
        rng = random.Random(11)
        return [[(rng.randint(1, 14), rng.randint(1, 14)) for _ in range(3)] for _ in range(count)]

    def test_instantiate_many_matches_scalar_loop(self, monkeypatch):
        queries = self.queries()
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        scalar = PlacementInstantiator(self.build_structure())
        expected = [scalar.instantiate(q) for q in queries]
        monkeypatch.delenv("REPRO_VECTORIZE")
        vectorized = PlacementInstantiator(self.build_structure())
        assert vectorized.vector_ready()
        got = vectorized.instantiate_many(queries)
        for a, b in zip(expected, got):
            assert dict(a.rects) == dict(b.rects)
            assert a.cost == b.cost
            assert a.source == b.source
            assert a.metadata["placement_index"] == b.metadata["placement_index"]

    def test_tier_hit_stats_identical_both_paths(self, monkeypatch):
        """The vectorized stored-placement sweep picks the same winners."""
        queries = self.queries()
        tier_keys = ("queries", "structure_hits", "nearest_hits", "fallback_hits")
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        scalar = PlacementInstantiator(self.build_structure())
        for q in queries:
            scalar.instantiate(q)
        scalar_tiers = {k: scalar.stats()[k] for k in tier_keys}
        assert scalar.vector_stats() == {
            "batch_evals": 0,
            "batch_candidates": 0,
            "vector_fallbacks": 0,
        }
        monkeypatch.delenv("REPRO_VECTORIZE")
        vectorized = PlacementInstantiator(self.build_structure())
        for q in queries:
            vectorized.instantiate(q)
        assert {k: vectorized.stats()[k] for k in tier_keys} == scalar_tiers
        # Every uncovered query ran one feasibility sweep over the six
        # stored placements.
        uncovered = scalar_tiers["nearest_hits"] + scalar_tiers["fallback_hits"]
        vector_stats = vectorized.vector_stats()
        assert vector_stats["batch_evals"] == uncovered
        assert vector_stats["batch_candidates"] == uncovered * 6
        assert vector_stats["vector_fallbacks"] == 0

    def test_instantiate_many_fallback_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        instantiator = PlacementInstantiator(self.build_structure())
        assert not instantiator.vector_ready()
        results = instantiator.instantiate_many(self.queries(5))
        assert len(results) == 5
        assert instantiator.vector_stats()["vector_fallbacks"] == 1

    def test_place_batch_uses_vector_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        instantiator = PlacementInstantiator(self.build_structure())
        results = instantiator.place_batch(self.queries(12))
        assert len(results) == 12
        assert instantiator.vector_stats()["batch_evals"] >= 1
        stats = instantiator.stats()
        assert stats["queries"] >= 1
        assert "batch_candidates" in stats


def test_numpy_available_in_test_environment():
    assert numpy_available()
