"""Tests for the generic simulated annealing engine and its schedules."""

import random

import pytest

from repro.annealing.acceptance import metropolis_accept
from repro.annealing.annealer import SimulatedAnnealer
from repro.annealing.schedule import AdaptiveSchedule, GeometricSchedule, LinearSchedule


class TestSchedules:
    def test_geometric_decreases(self):
        schedule = GeometricSchedule(initial_temperature=100.0, alpha=0.5, minimum_temperature=1.0)
        assert schedule.temperature(0) == 100.0
        assert schedule.temperature(1) == 50.0
        assert not schedule.finished(0)
        assert schedule.finished(7)

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            GeometricSchedule(initial_temperature=-1.0)
        with pytest.raises(ValueError):
            GeometricSchedule(alpha=1.5)

    def test_linear_reaches_zero(self):
        schedule = LinearSchedule(initial_temperature=10.0, steps=5)
        assert schedule.temperature(0) == 10.0
        assert schedule.temperature(5) == 0.0
        assert schedule.finished(5)

    def test_adaptive_scales_with_reference(self):
        low = AdaptiveSchedule(reference_cost=10.0, fraction=0.5)
        high = AdaptiveSchedule(reference_cost=1000.0, fraction=0.5)
        assert high.initial_temperature > low.initial_temperature
        assert high.temperature(1) < high.temperature(0)


class TestMetropolis:
    def test_improvement_always_accepted(self):
        rng = random.Random(0)
        assert metropolis_accept(10.0, 5.0, 1.0, rng)
        assert metropolis_accept(10.0, 10.0, 0.0, rng)

    def test_zero_temperature_rejects_worsening(self):
        rng = random.Random(0)
        assert not metropolis_accept(10.0, 11.0, 0.0, rng)

    def test_high_temperature_accepts_most_worsening(self):
        rng = random.Random(0)
        accepted = sum(
            metropolis_accept(10.0, 10.5, 1000.0, rng) for _ in range(200)
        )
        assert accepted > 190

    def test_low_temperature_rejects_most_worsening(self):
        rng = random.Random(0)
        accepted = sum(metropolis_accept(10.0, 20.0, 0.5, rng) for _ in range(200))
        assert accepted < 10


class TestAnnealer:
    def test_minimizes_quadratic(self):
        def evaluate(x):
            return (x - 3.0) ** 2

        def propose(x, rng):
            return x + rng.uniform(-1.0, 1.0)

        annealer = SimulatedAnnealer(
            evaluate,
            propose,
            schedule=GeometricSchedule(initial_temperature=5.0, alpha=0.9, minimum_temperature=0.01),
            moves_per_temperature=20,
            seed=0,
        )
        result = annealer.run(20.0)
        assert abs(result.best_state - 3.0) < 1.0
        assert result.best_cost <= result.final_cost + 1e-9
        assert result.best_cost <= result.average_cost

    def test_iteration_budget_respected(self):
        annealer = SimulatedAnnealer(
            evaluate=lambda x: x,
            propose=lambda x, rng: x + 1,
            schedule=GeometricSchedule(initial_temperature=100.0, alpha=0.999, minimum_temperature=1e-6),
            moves_per_temperature=10,
            max_iterations=37,
            seed=0,
        )
        result = annealer.run(0)
        assert result.iterations == 37

    def test_history_recorded_when_enabled(self):
        annealer = SimulatedAnnealer(
            evaluate=lambda x: abs(x),
            propose=lambda x, rng: x + rng.choice([-1, 1]),
            moves_per_temperature=5,
            max_iterations=50,
            record_history=True,
            seed=1,
        )
        result = annealer.run(10)
        assert len(result.cost_history) >= 1
        assert 0.0 <= result.acceptance_ratio <= 1.0

    def test_same_seed_reproducible(self):
        def make():
            return SimulatedAnnealer(
                evaluate=lambda x: (x - 1.0) ** 2,
                propose=lambda x, rng: x + rng.uniform(-0.5, 0.5),
                moves_per_temperature=10,
                max_iterations=100,
                seed=42,
            )

        assert make().run(5.0).best_state == make().run(5.0).best_state

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SimulatedAnnealer(lambda x: x, lambda x, rng: x, moves_per_temperature=0)
        with pytest.raises(ValueError):
            SimulatedAnnealer(lambda x: x, lambda x, rng: x, max_iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealer(lambda x: x, lambda x, rng: x, history_stride=0)

    def test_run_requires_callables(self):
        annealer = SimulatedAnnealer(schedule=GeometricSchedule())
        with pytest.raises(ValueError):
            annealer.run(0.0)

    def test_history_stride_thins_history(self):
        def make(stride):
            return SimulatedAnnealer(
                evaluate=lambda x: abs(x),
                propose=lambda x, rng: x + rng.choice([-1, 1]),
                moves_per_temperature=10,
                max_iterations=300,
                record_history=True,
                history_stride=stride,
                seed=2,
            )

        dense = make(1).run(50)
        sparse = make(5).run(50)
        # Same trajectory (the stride only thins the recording) ...
        assert sparse.best_cost == dense.best_cost
        assert sparse.accepted_moves == dense.accepted_moves
        # ... with every 5th accepted cost kept (plus the initial cost).
        assert len(sparse.cost_history) == 1 + dense.accepted_moves // 5
        assert sparse.cost_history[0] == dense.cost_history[0]
        assert sparse.cost_history[1:] == dense.cost_history[5::5]


class _CounterEngine:
    """Minimal delta engine over an integer state with cost |x - 3|."""

    def __init__(self, start):
        self._state = start
        self._pending = None
        self.commits = 0
        self.reverts = 0

    def current_cost(self):
        return abs(self._state - 3)

    def snapshot(self):
        return self._state

    def propose(self, rng):
        self._pending = self._state + rng.choice([-1, 1])
        return abs(self._pending - 3)

    def commit(self):
        self._state = self._pending
        self._pending = None
        self.commits += 1

    def revert(self):
        self._pending = None
        self.reverts += 1


class TestRunIncremental:
    def test_matches_pure_path_exactly(self):
        """Same seed, same moves: the two paths share one trajectory."""

        def make_annealer():
            return SimulatedAnnealer(
                evaluate=lambda x: abs(x - 3),
                propose=lambda x, rng: x + rng.choice([-1, 1]),
                schedule=GeometricSchedule(initial_temperature=10.0, alpha=0.8,
                                           minimum_temperature=0.05),
                moves_per_temperature=15,
                record_history=True,
                seed=9,
            )

        pure = make_annealer().run(20)
        delta = make_annealer().run_incremental(_CounterEngine(20))
        assert delta.best_state == pure.best_state
        assert delta.best_cost == pure.best_cost
        assert delta.final_state == pure.final_state
        assert delta.final_cost == pure.final_cost
        assert delta.average_cost == pure.average_cost
        assert delta.iterations == pure.iterations
        assert delta.accepted_moves == pure.accepted_moves
        assert delta.cost_history == pure.cost_history

    def test_every_move_commits_or_reverts(self):
        engine = _CounterEngine(10)
        annealer = SimulatedAnnealer(
            moves_per_temperature=10, max_iterations=80, seed=0
        )
        result = annealer.run_incremental(engine)
        assert engine.commits + engine.reverts == result.iterations
        assert engine.commits == result.accepted_moves
