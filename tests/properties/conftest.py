"""Shared machinery for the property-based test layer.

These tests are *randomized but reproducible*: every case draws from a
seeded :class:`random.Random` (no third-party property-testing dependency),
runs many trials, and prints nothing unless an invariant breaks — in which
case the seed in the test id pins the failure exactly.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.circuit.block import Block
from repro.circuit.devices import DeviceType
from repro.circuit.net import Net, Terminal
from repro.circuit.netlist import Circuit
from repro.circuit.pin import Pin
from repro.circuit.symmetry import SymmetryGroup

#: Number of randomized trials per property (kept small; each is cheap).
TRIALS = 25


def random_block(rng: random.Random, name: str, symmetry_group: Optional[str] = None) -> Block:
    """A block with random (but valid) dimension bounds and pins."""
    min_w = rng.randint(2, 10)
    min_h = rng.randint(2, 10)
    # Every block keeps the conventional centre pin "c" (nets must reference
    # pins that exist) plus a few random extras.
    pins = {"c": Pin("c", 0.5, 0.5)}
    for index in range(rng.randint(0, 3)):
        pin_name = f"p{index}"
        pins[pin_name] = Pin(pin_name, round(rng.random(), 3), round(rng.random(), 3))
    return Block(
        name=name,
        min_w=min_w,
        max_w=min_w + rng.randint(0, 12),
        min_h=min_h,
        max_h=min_h + rng.randint(0, 12),
        device_type=rng.choice(list(DeviceType)),
        generator=rng.choice([None, "mosfet", "capacitor", "resistor"]),
        symmetry_group=symmetry_group,
        pins=pins,
    )


def random_circuit(rng: random.Random, name: str = "prop") -> Circuit:
    """A random multi-block circuit with nets and (sometimes) a symmetry group."""
    num_blocks = rng.randint(2, 7)
    block_names = [f"b{i}" for i in range(num_blocks)]
    symmetry: Optional[SymmetryGroup] = None
    symmetry_members: dict = {}
    if num_blocks >= 4 and rng.random() < 0.5:
        pair = (block_names[0], block_names[1])
        self_symmetric = (block_names[2],) if rng.random() < 0.5 else ()
        symmetry = SymmetryGroup("sym0", (pair,), self_symmetric)
        symmetry_members = {name: "sym0" for name in pair + self_symmetric}

    circuit = Circuit(name)
    blocks = [
        random_block(rng, block_name, symmetry_members.get(block_name))
        for block_name in block_names
    ]
    for block in blocks:
        circuit.add_block(block)

    num_nets = rng.randint(1, num_blocks + 2)
    for index in range(num_nets):
        size = rng.randint(2, min(4, num_blocks))
        members = rng.sample(block_names, size)
        terminals = []
        for member in members:
            pin_names = sorted(blocks[block_names.index(member)].pins)
            terminals.append(Terminal(member, rng.choice(pin_names)))
        circuit.add_net(
            Net(
                name=f"n{index}",
                terminals=tuple(terminals),
                weight=round(rng.uniform(0.5, 3.0), 3),
                external=rng.random() < 0.3,
                io_position=(round(rng.random(), 3), round(rng.random(), 3)),
            )
        )
    if symmetry is not None:
        circuit.add_symmetry_group(symmetry)
    return circuit


def shuffled_clone(circuit: Circuit, rng: random.Random, name: Optional[str] = None) -> Circuit:
    """The same topology re-declared with blocks and nets in shuffled order."""
    clone = Circuit(name if name is not None else circuit.name)
    blocks = list(circuit.blocks)
    rng.shuffle(blocks)
    for block in blocks:
        clone.add_block(block)
    nets = list(circuit.nets)
    rng.shuffle(nets)
    for net in nets:
        # Terminal order inside a net is also declaration order; shuffle it too.
        terminals = list(net.terminals)
        rng.shuffle(terminals)
        clone.add_net(
            Net(
                name=net.name,
                terminals=tuple(terminals),
                weight=net.weight,
                external=net.external,
                io_position=net.io_position,
            )
        )
    groups = list(circuit.symmetry_groups)
    rng.shuffle(groups)
    for group in groups:
        pairs = list(group.pairs)
        rng.shuffle(pairs)
        clone.add_symmetry_group(
            SymmetryGroup(group.name, tuple(pairs), group.self_symmetric)
        )
    return clone
