"""Property: every serialization boundary round-trips losslessly.

Circuits, multi-placement structures and placements all cross process and
disk boundaries (registry files, worker pools, golden fixtures); each
randomized case must survive ``to_dict -> json -> from_dict`` and pickling
bit-for-bit.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.api.placement import Placement
from repro.core.placement_entry import DimensionRange
from repro.core.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    placement_from_dict,
    placement_to_dict,
    structure_from_dict,
    structure_to_dict,
)
from repro.core.structure import MultiPlacementStructure
from repro.cost.cost_function import CostBreakdown
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.rect import Rect
from repro.service.fingerprint import circuit_fingerprint
from tests.properties.conftest import TRIALS, random_circuit


def random_placement(rng: random.Random) -> Placement:
    """A random placement with a full cost breakdown and typical metadata."""
    num = rng.randint(1, 6)
    rects = {
        f"b{i}": Rect(rng.randint(0, 40), rng.randint(0, 40), rng.randint(1, 12), rng.randint(1, 12))
        for i in range(num)
    }
    cost = CostBreakdown(
        total=round(rng.uniform(0, 500), 6),
        wirelength=round(rng.uniform(0, 300), 6),
        area=round(rng.uniform(0, 200), 6),
        overlap=round(rng.uniform(0, 5), 6),
        symmetry=round(rng.uniform(0, 5), 6),
    )
    metadata = {
        "dims": tuple((rect.w, rect.h) for rect in rects.values()),
        "placement_index": rng.randint(0, 9),
        "memoized": rng.random() < 0.5,
    }
    if rng.random() < 0.3:
        metadata["routing"] = {"routed_wirelength": round(rng.uniform(0, 100), 6)}
    return Placement(
        rects=rects,
        cost=cost,
        placer=rng.choice(["mps", "service", "template"]),
        source=rng.choice(["structure", "nearest", "fallback"]),
        elapsed_seconds=round(rng.uniform(0, 0.01), 9),
        metadata=metadata,
    )


def random_structure(rng: random.Random) -> MultiPlacementStructure:
    """A hand-built random structure (no generation run needed)."""
    circuit = random_circuit(rng)
    bounds = FloorplanBounds(rng.randint(30, 80), rng.randint(30, 80))
    structure = MultiPlacementStructure(circuit, bounds)
    if rng.random() < 0.7:
        structure.set_fallback(
            [(rng.randint(0, 20), rng.randint(0, 20)) for _ in circuit.blocks]
        )
    for _ in range(rng.randint(1, 5)):
        ranges = []
        for block in circuit.blocks:
            w0 = rng.randint(block.min_w, block.max_w)
            h0 = rng.randint(block.min_h, block.max_h)
            ranges.append(
                DimensionRange.from_tuple(
                    (w0, rng.randint(w0, block.max_w), h0, rng.randint(h0, block.max_h))
                )
            )
        average_cost = round(rng.uniform(1, 100), 6)
        structure.add_placement(
            anchors=[(rng.randint(0, 30), rng.randint(0, 30)) for _ in circuit.blocks],
            ranges=ranges,
            average_cost=average_cost,
            best_cost=round(rng.uniform(0, average_cost), 6),
            best_dims=[(rng.randint(2, 12), rng.randint(2, 12)) for _ in circuit.blocks],
        )
    return structure


@pytest.mark.parametrize("seed", range(TRIALS))
def test_circuit_round_trip(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng)
    data = json.loads(json.dumps(circuit_to_dict(circuit)))
    rebuilt = circuit_from_dict(data)
    assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)
    assert circuit_to_dict(rebuilt) == circuit_to_dict(circuit)
    assert rebuilt.block_names() == circuit.block_names()


@pytest.mark.parametrize("seed", range(TRIALS))
def test_structure_round_trip(seed):
    rng = random.Random(4000 + seed)
    structure = random_structure(rng)
    data = json.loads(json.dumps(structure_to_dict(structure)))
    rebuilt = structure_from_dict(data)
    assert structure_to_dict(rebuilt) == structure_to_dict(structure)
    assert rebuilt.num_placements == structure.num_placements
    assert rebuilt.fallback_anchors == structure.fallback_anchors


@pytest.mark.parametrize("seed", range(TRIALS))
def test_placement_round_trip(seed):
    rng = random.Random(5000 + seed)
    placement = random_placement(rng)
    data = json.loads(json.dumps(placement_to_dict(placement)))
    rebuilt = placement_from_dict(data)
    assert dict(rebuilt.rects) == dict(placement.rects)
    assert rebuilt.cost == placement.cost
    assert rebuilt.placer == placement.placer
    assert rebuilt.source == placement.source
    assert rebuilt.elapsed_seconds == placement.elapsed_seconds
    assert dict(rebuilt.metadata) == dict(placement.metadata)
    # ``dims`` must come back as the tuple form accessors expect.
    assert rebuilt.dims == placement.dims


@pytest.mark.parametrize("seed", range(TRIALS))
def test_placement_pickle_round_trip(seed):
    rng = random.Random(6000 + seed)
    placement = random_placement(rng)
    rebuilt = pickle.loads(pickle.dumps(placement))
    assert dict(rebuilt.rects) == dict(placement.rects)
    assert rebuilt.cost == placement.cost
    assert dict(rebuilt.metadata) == dict(placement.metadata)
    # The rehydrated mapping is frozen again, not a mutable dict.
    with pytest.raises(TypeError):
        rebuilt.rects["new"] = Rect(0, 0, 1, 1)  # type: ignore[index]
