"""Property: orientation transforms obey their group algebra.

The eight layout orientations form the dihedral group of the square;
random pin offsets and footprints must round-trip through every
orientation/inverse pair, involutions must self-invert, and offsets must
stay inside the unit square.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry.transform import Orientation, oriented_dims, oriented_pin_offset
from tests.properties.conftest import TRIALS

#: Each orientation and the orientation that undoes it.
INVERSES = {
    Orientation.R0: Orientation.R0,
    Orientation.R90: Orientation.R270,
    Orientation.R180: Orientation.R180,
    Orientation.R270: Orientation.R90,
    Orientation.MX: Orientation.MX,
    Orientation.MY: Orientation.MY,
    Orientation.MX90: Orientation.MX90,
    Orientation.MY90: Orientation.MY90,
}


@pytest.mark.parametrize("seed", range(TRIALS))
@pytest.mark.parametrize("orientation", list(Orientation))
def test_pin_offset_round_trips_through_inverse(seed, orientation):
    rng = random.Random(seed)
    fx, fy = rng.random(), rng.random()
    gx, gy = oriented_pin_offset(fx, fy, orientation)
    hx, hy = oriented_pin_offset(gx, gy, INVERSES[orientation])
    assert hx == pytest.approx(fx, abs=1e-12)
    assert hy == pytest.approx(fy, abs=1e-12)


@pytest.mark.parametrize("seed", range(TRIALS))
@pytest.mark.parametrize("orientation", list(Orientation))
def test_pin_offset_stays_in_unit_square(seed, orientation):
    rng = random.Random(500 + seed)
    fx, fy = rng.random(), rng.random()
    gx, gy = oriented_pin_offset(fx, fy, orientation)
    assert 0.0 <= gx <= 1.0
    assert 0.0 <= gy <= 1.0


@pytest.mark.parametrize("seed", range(TRIALS))
@pytest.mark.parametrize("orientation", list(Orientation))
def test_dims_round_trip_and_swap_consistency(seed, orientation):
    rng = random.Random(900 + seed)
    w, h = rng.randint(1, 64), rng.randint(1, 64)
    ow, oh = oriented_dims(w, h, orientation)
    if orientation.swaps_dimensions:
        assert (ow, oh) == (h, w)
    else:
        assert (ow, oh) == (w, h)
    # Applying the inverse footprint transform restores the original.
    assert oriented_dims(ow, oh, INVERSES[orientation]) == (w, h)
    # Area is always preserved.
    assert ow * oh == w * h


@pytest.mark.parametrize("orientation", list(Orientation))
def test_corner_pins_map_to_corners(orientation):
    """Orientations permute the unit square's corners among themselves."""
    corners = {(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)}
    mapped = {oriented_pin_offset(fx, fy, orientation) for fx, fy in corners}
    assert mapped == corners
