"""Property: topology fingerprints are invariant under declaration order.

The registry's whole correctness story rests on one invariant — two
declarations of the same topology hash identically no matter the order in
which blocks, nets, terminals or symmetry pairs were added — and on its
converse: any *semantic* change moves the hash.  Both are exercised here
over randomized circuits.
"""

from __future__ import annotations

import random

import pytest

from repro.circuit.net import Net
from repro.service.fingerprint import (
    canonical_circuit_dict,
    circuit_fingerprint,
    structure_key,
)
from tests.properties.conftest import TRIALS, random_circuit, shuffled_clone


@pytest.mark.parametrize("seed", range(TRIALS))
def test_fingerprint_invariant_under_permutation(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng)
    clone = shuffled_clone(circuit, rng)
    assert circuit_fingerprint(clone) == circuit_fingerprint(circuit)
    assert canonical_circuit_dict(clone) == canonical_circuit_dict(circuit)
    assert structure_key(clone) == structure_key(circuit)


@pytest.mark.parametrize("seed", range(TRIALS))
def test_fingerprint_ignores_circuit_name(seed):
    rng = random.Random(1000 + seed)
    circuit = random_circuit(rng, name="original")
    renamed = shuffled_clone(circuit, rng, name="renamed")
    assert circuit_fingerprint(renamed) == circuit_fingerprint(circuit)
    # ...unless the name is explicitly included.
    assert circuit_fingerprint(renamed, include_name=True) != circuit_fingerprint(
        circuit, include_name=True
    )


@pytest.mark.parametrize("seed", range(TRIALS))
def test_fingerprint_moves_on_semantic_change(seed):
    rng = random.Random(2000 + seed)
    circuit = random_circuit(rng)
    fingerprint = circuit_fingerprint(circuit)

    # Perturbing one net's weight is a semantic change.
    mutated = shuffled_clone(circuit, rng)
    victim = rng.randrange(len(mutated.nets))
    net = mutated.nets[victim]
    mutated.nets[victim] = Net(
        name=net.name,
        terminals=net.terminals,
        weight=net.weight + 0.125,
        external=net.external,
        io_position=net.io_position,
    )
    assert circuit_fingerprint(mutated) != fingerprint


@pytest.mark.parametrize("seed", range(TRIALS))
def test_structure_key_separates_configs(seed):
    rng = random.Random(3000 + seed)
    circuit = random_circuit(rng)
    from repro.core.generator import GeneratorConfig

    a = GeneratorConfig.smoke(seed=1)
    b = GeneratorConfig.smoke(seed=2)
    assert structure_key(circuit, a) != structure_key(circuit, b)
    # Same circuit, same config: stable across calls.
    assert structure_key(circuit, a) == structure_key(shuffled_clone(circuit, rng), a)
