"""Shared fixtures for the pytest-benchmark harness.

Every bench runs at the ``smoke`` experiment scale so the whole suite
finishes in minutes; pass ``--scale`` through the environment variable
``REPRO_BENCH_SCALE`` (smoke / medium / full) to get closer to the paper's
budgets.
"""

from __future__ import annotations

import os

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.experiments.config import get_scale


def bench_scale():
    """The experiment scale selected for this benchmark session."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


@pytest.fixture(scope="session")
def scale():
    """Session-wide experiment scale."""
    return bench_scale()


@pytest.fixture(scope="session")
def opamp_structure(scale):
    """A generated structure for the two-stage opamp (shared by several benches)."""
    circuit = get_benchmark("two_stage_opamp")
    generator = MultiPlacementGenerator(circuit, scale.generator_config(circuit, seed=0))
    return generator.generate_with_stats(), generator


@pytest.fixture(scope="session")
def cascode_structure(scale):
    """A generated structure for the 21-block tso-cascode benchmark."""
    circuit = get_benchmark("tso_cascode")
    generator = MultiPlacementGenerator(circuit, scale.generator_config(circuit, seed=0))
    return generator.generate_with_stats(), generator
