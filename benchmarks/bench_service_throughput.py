"""Placement service throughput — cold vs. warm registry, batching, dedup.

The service layer's value proposition in numbers:

* **cold vs. warm registry** — ``get_or_generate`` pays the full Figure 1.a
  generation cost exactly once per topology; afterwards the structure loads
  from disk in milliseconds.
* **batch sizes 1 / 32 / 256** — queries/sec of ``instantiate_batch`` on a
  warm service, where duplicate-heavy batches collapse via deduplication
  and memoization.
* **acceptance check** — a warm service answering 256 duplicated-heavy
  queries in one batch must beat 256 sequential cold
  ``PlacementInstantiator.instantiate`` calls by at least 5x.
"""

import random
import shutil
import tempfile
import time

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from repro.service.engine import PlacementService
from repro.service.registry import StructureRegistry
from benchmarks.conftest import bench_scale

CIRCUIT = "two_stage_opamp"
BATCH_SIZES = [1, 32, 256]
#: Unique dimension vectors behind the duplicated-heavy 256-query workload.
UNIQUE_VECTORS = 16


def make_workload(circuit, structure, size, unique=UNIQUE_VECTORS, seed=1):
    """``size`` queries drawn round-robin from ``unique`` mixed vectors.

    Half the unique vectors are stored placements' best dimensions (in-box
    structure hits), half are random (mostly out-of-box), so the workload
    exercises every tier.
    """
    rng = random.Random(seed)
    vectors = [list(p.best_dims) for p in structure if p.best_dims][: unique // 2]
    while len(vectors) < unique:
        vectors.append(
            [
                (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
                for b in circuit.blocks
            ]
        )
    return [vectors[i % len(vectors)] for i in range(size)]


@pytest.fixture(scope="module")
def service_setup():
    scale = bench_scale()
    circuit = get_benchmark(CIRCUIT)
    config = scale.generator_config(circuit, seed=0)
    root = tempfile.mkdtemp(prefix="repro-bench-registry-")
    registry = StructureRegistry(root)
    structure = registry.get_or_generate(circuit, config)  # the one-time cold cost
    yield circuit, config, root, structure
    shutil.rmtree(root, ignore_errors=True)


def test_cold_vs_warm_registry(benchmark, service_setup):
    """Warm ``get_or_generate`` (disk load) vs. the cold generation run."""
    circuit, config, root, _ = service_setup

    with tempfile.TemporaryDirectory() as cold_root:
        start = time.perf_counter()
        StructureRegistry(cold_root).get_or_generate(circuit, config)
        cold_seconds = time.perf_counter() - start

    warm_registry = StructureRegistry(root)
    structure = benchmark(lambda: warm_registry.get_or_generate(circuit, config))
    assert structure.num_placements > 0
    assert warm_registry.stats.generations == 0

    warm_seconds = benchmark.stats["mean"]
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cold_over_warm"] = round(cold_seconds / warm_seconds, 1)
    assert warm_seconds < cold_seconds


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_throughput(benchmark, service_setup, batch_size):
    """Queries/sec of a warm service across batch sizes."""
    circuit, config, root, structure = service_setup
    service = PlacementService(StructureRegistry(root), default_config=config)
    service.warm(circuit)
    workload = make_workload(circuit, structure, batch_size)

    result = benchmark(lambda: service.instantiate_batch(circuit, workload))
    assert result.total_queries == batch_size
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["unique_queries"] = result.unique_queries
    benchmark.extra_info["queries_per_second"] = round(
        batch_size / benchmark.stats["mean"]
    )


def best_of(fn, repeats=3):
    """Minimum wall-clock over ``repeats`` runs (robust to scheduler noise)."""
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return best_seconds, result


def test_acceptance_batch_5x_faster_than_sequential_cold(service_setup):
    """The ISSUE acceptance bar: warm batched >= 5x sequential cold."""
    circuit, config, root, structure = service_setup
    workload = make_workload(circuit, structure, 256)

    # Baseline: 256 sequential instantiate calls on a cold (uncached,
    # unmemoized) instantiator.
    cold = PlacementInstantiator(structure)
    sequential_seconds, cold_results = best_of(
        lambda: [cold.instantiate(dims) for dims in workload]
    )

    service = PlacementService(StructureRegistry(root), default_config=config)
    service.warm(circuit)
    batched_seconds, batch = best_of(
        lambda: service.instantiate_batch(circuit, workload)
    )

    # Same answers, >= 5x faster.
    for got, expected in zip(batch, cold_results):
        assert got.source == expected.source
        assert dict(got.rects) == dict(expected.rects)
    speedup = sequential_seconds / batched_seconds
    print(
        f"\nsequential cold: {sequential_seconds * 1000:.1f}ms, "
        f"warm batch: {batched_seconds * 1000:.1f}ms, speedup: {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"warm batched speedup {speedup:.1f}x is below the 5x bar"

    # And the tier stats must cover a whole mixed workload.
    service.reset_stats()
    batch = service.instantiate_batch(circuit, workload)
    stats = service.stats
    assert stats.queries == 256
    assert sum(stats.tier_counts.values()) == 256
    assert stats.dedup_hits == 256 - batch.unique_queries
