"""Observability overhead — tracing must be affordable, off must be free.

Asserts three things about the observability layer on the fixed-seed
layout-inclusive synthesis loop:

* fully enabled tracing costs < 5% of the loop's wall-clock,
* the disabled path (a single flag check per instrumentation point) is
  ~0%,
* the traced trajectory is bit-identical to the untraced one (tracing is
  a pure observer; it never touches an RNG).

Direct wall-clock A/B of two ~50ms runs cannot resolve the real ~1.5%
span cost on a noisy shared machine (paired ratios swing ±10%).  The
overhead assertion instead uses a **projected** estimate that is stable
to a fraction of a percent:

    overhead = spans_per_run × unit_span_cost / baseline_run_seconds

where ``spans_per_run`` is counted from an actual traced run (so the
projection tracks instrumentation density — add spans to a hot loop and
this test fails), ``unit_span_cost`` comes from a tight min-of-N
microbenchmark of ``obs.span``, and the baseline is a min-of-N timing of
the untraced loop.  Minima are robust here because scheduler noise only
ever adds time.

Run directly for the plain-text report::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import gc
import time

from repro import obs
from repro.synthesis.loop import LayoutInclusiveSynthesis, SynthesisConfig
from repro.synthesis.opamp_design import two_stage_opamp_design
from repro.synthesis.optimizer import SizingOptimizerConfig

#: Overhead ceiling for fully enabled tracing (fraction of baseline).
MAX_TRACED_OVERHEAD = 0.05
#: Ceiling for the disabled path.  Measured cost is ~0.1%; anything above
#: half a percent means the off-switch stopped being a single branch.
MAX_DISABLED_OVERHEAD = 0.005
#: Repeats for the min-of-N timings.
REPEATS = 5
#: Spans per microbenchmark rep — large enough to amortise the clock.
UNIT_SPANS = 20_000


def _run_loop():
    design = two_stage_opamp_design()
    loop = LayoutInclusiveSynthesis(
        design.sizing_model,
        design.performance_model,
        design.spec,
        {"kind": "template"},
        config=SynthesisConfig(optimizer=SizingOptimizerConfig(max_iterations=120)),
        seed=11,
    )
    return loop.run()


def _trajectory(result):
    return (
        result.evaluations,
        tuple(result.history),
        result.best.objective,
        tuple(sorted((n, r.x, r.y, r.w, r.h) for n, r in result.best.placement.rects.items())),
    )


def _baseline_seconds():
    """Min-of-N wall-clock of the untraced loop."""
    best = float("inf")
    for _ in range(REPEATS):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            _run_loop()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def _spans_per_run():
    """(span_count, trajectory) of one fully traced run."""
    obs.reset()
    obs.configure(enabled=True)
    try:
        result = _run_loop()
        records = obs.spans_snapshot()
        assert records, "tracing was enabled but recorded no spans"
        return len(records), _trajectory(result)
    finally:
        obs.reset()


def _unit_span_cost(enabled: bool):
    """Min-of-N per-span cost of ``obs.span`` in the given mode."""
    obs.reset()
    obs.configure(enabled=enabled)
    try:
        best = float("inf")
        for _ in range(REPEATS):
            gc.collect()
            start = time.perf_counter()
            for _ in range(UNIT_SPANS):
                with obs.span("bench.unit", probe=1):
                    pass
            best = min(best, (time.perf_counter() - start) / UNIT_SPANS)
            obs.clear_spans()
        return best
    finally:
        obs.reset()


def test_observability_overhead():
    _run_loop()  # warm imports and first-use caches out of the timings

    baseline_trajectory = _trajectory(_run_loop())
    spans, traced_trajectory = _spans_per_run()
    assert traced_trajectory == baseline_trajectory, (
        "enabling tracing changed the fixed-seed trajectory"
    )

    baseline = _baseline_seconds()
    unit = _unit_span_cost(enabled=True)
    overhead = spans * unit / baseline
    print(
        f"\nobs traced overhead: {overhead:+.2%} projected "
        f"({spans} spans x {unit * 1e6:.2f}us over {baseline * 1e3:.1f}ms)"
    )
    assert overhead < MAX_TRACED_OVERHEAD, (
        f"traced synthesis loop costs {overhead:.2%} of the baseline "
        f"(budget {MAX_TRACED_OVERHEAD:.0%})"
    )


def test_disabled_observability_is_free():
    _run_loop()

    spans, _ = _spans_per_run()
    baseline = _baseline_seconds()
    unit = _unit_span_cost(enabled=False)
    overhead = spans * unit / baseline
    print(
        f"\nobs disabled overhead: {overhead:+.3%} projected "
        f"({spans} spans x {unit * 1e9:.0f}ns over {baseline * 1e3:.1f}ms)"
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {overhead:.3%} (should be ~0%)"
    )
