"""Table 2 (instantiation column) — per-query placement instantiation time.

The paper's headline claim: once generated, a multi-placement structure
instantiates a placement in milliseconds (0.07 s - 0.15 s on 2005 hardware,
growing mildly with circuit size), fast enough for a layout-inclusive
sizing loop.
"""

import random

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator
from benchmarks.conftest import bench_scale

CIRCUITS = ["circ01", "two_stage_opamp", "mixer", "tso_cascode"]


@pytest.fixture(scope="module", params=CIRCUITS)
def instantiation_setup(request):
    scale = bench_scale()
    circuit = get_benchmark(request.param)
    generator = MultiPlacementGenerator(circuit, scale.generator_config(circuit, seed=0))
    structure = generator.generate()
    instantiator = PlacementInstantiator(structure)
    rng = random.Random(1)
    dims_samples = [
        [
            (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
            for b in circuit.blocks
        ]
        for _ in range(64)
    ]
    return request.param, circuit, instantiator, dims_samples


def test_table2_instantiation(benchmark, instantiation_setup):
    name, circuit, instantiator, dims_samples = instantiation_setup
    counter = {"i": 0}

    def instantiate_one():
        dims = dims_samples[counter["i"] % len(dims_samples)]
        counter["i"] += 1
        return instantiator.instantiate(dims)

    result = benchmark(instantiate_one)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["blocks"] = circuit.num_blocks
    benchmark.extra_info["placements"] = instantiator.structure.num_placements
    assert len(result.rects) == circuit.num_blocks
    # Milliseconds, not seconds: the property that makes the structure usable
    # inside a synthesis loop.
    import time

    start = time.perf_counter()
    for _ in range(20):
        instantiate_one()
    assert (time.perf_counter() - start) / 20 < 0.05
