"""Figure 5 — size-dependent floorplan instantiations vs the fixed template.

Checks the figure's qualitative content (two different size vectors get two
different floorplans out of the structure; the fixed template gives one
arrangement whose cost the structure matches or beats) and measures the
latency of the repeated structure queries a synthesis loop would issue.
"""

from repro.core.instantiator import PlacementInstantiator
from repro.experiments.figure5 import run_figure5
from benchmarks.conftest import bench_scale


def test_figure5_instantiations(benchmark):
    scale = bench_scale()
    result = run_figure5(scale=scale, seed=0)
    instantiator = PlacementInstantiator(result.structure)
    queries = [result.dims_a, result.dims_b]
    counter = {"i": 0}

    def reinstantiate():
        dims = queries[counter["i"] % 2]
        counter["i"] += 1
        return instantiator.instantiate(dims)

    benchmark(reinstantiate)
    benchmark.extra_info["arrangements_differ"] = result.arrangements_differ
    benchmark.extra_info["cost_a"] = round(result.instantiation_a.total_cost, 2)
    benchmark.extra_info["template_cost_a"] = round(result.template_cost_a, 2)
    benchmark.extra_info["cost_b"] = round(result.instantiation_b.total_cost, 2)
    benchmark.extra_info["template_cost_b"] = round(result.template_cost_b, 2)

    assert result.instantiation_a.used_stored_placement
    assert result.instantiation_b.used_stored_placement
    assert result.arrangements_differ
    assert result.structure_beats_or_matches_template
