"""Vectorized batch scoring vs the scalar and incremental paths.

PR 9 stacked candidate layouts into ``(n_candidates, n_blocks, 4)`` rect
tensors and moved population/batch scoring onto
:class:`~repro.eval.BatchEvaluator`'s fused array kernels.  This bench
scores random candidate populations of a 64-module synthetic circuit three
ways at several batch sizes:

* the historical scalar loop — one ``evaluate_layout`` per candidate,
* the incremental evaluator — ``rebase`` onto each candidate in turn (the
  genetic placer's previous population-scoring path), and
* the batch evaluator — one vectorized sweep over the stacked tensor.

Two bars are asserted:

* at batch size :data:`ASSERT_BATCH` the vectorized sweep is at least
  :data:`MIN_SPEEDUP` x faster than the scalar loop (best of several
  interleaved repetitions, so one scheduler hiccup cannot fail the
  build), and
* the three paths agree on every total *bitwise* — the batch kernels are
  drop-in replacements, not approximations.

Results (candidates/second per path and batch size) are printed and
written to ``BENCH_eval.json`` next to the test file.
"""

import json
import random
import time

import pytest

from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds

from benchmarks.bench_incremental_eval import NUM_BLOCKS, build_synthetic_circuit

np = pytest.importorskip("numpy")

#: Candidate-batch sizes scored by every path.
BATCH_SIZES = (8, 64, 512)
#: The batch size the acceptance bar is measured at.
ASSERT_BATCH = 64
#: Interleaved (scalar, incremental, batch) repetitions; best ratio asserted.
REPETITIONS = 3
#: Acceptance bar: vectorized scoring at least this many times faster than
#: the scalar loop at ASSERT_BATCH candidates.
MIN_SPEEDUP = 5.0

RESULTS_FILE = "BENCH_eval.json"


class _Harness:
    """Random candidate populations of one synthetic placement problem."""

    def __init__(self, seed=29):
        self.circuit = build_synthetic_circuit()
        self.bounds = FloorplanBounds.for_blocks(
            self.circuit.max_dims(), whitespace_factor=1.8
        )
        self.cost_fn = PlacementCostFunction(
            self.circuit, self.bounds, weights=CostWeights().with_legalization()
        )
        self.evaluator = self.cost_fn.batch()
        rng = random.Random(seed)
        self.dims = tuple(
            (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
            for b in self.circuit.blocks
        )
        self._rng = rng

    def population(self, count):
        rng = self._rng
        return [
            tuple(
                self.bounds.clamp_anchor(
                    rng.randrange(self.bounds.width),
                    rng.randrange(self.bounds.height),
                    w,
                    h,
                )
                for (w, h) in self.dims
            )
            for _ in range(count)
        ]

    def run_scalar(self, population):
        start = time.perf_counter()
        totals = [
            self.cost_fn.evaluate_layout(anchors, self.dims).total
            for anchors in population
        ]
        return totals, time.perf_counter() - start

    def run_incremental(self, population):
        start = time.perf_counter()
        evaluator = self.cost_fn.bind(population[0], self.dims)
        totals = [evaluator.rebase(anchors=anchors) for anchors in population]
        return totals, time.perf_counter() - start

    def run_batch(self, population):
        start = time.perf_counter()
        totals = self.evaluator.totals(
            self.evaluator.stack(population, self.dims)
        ).tolist()
        return totals, time.perf_counter() - start


def test_vectorized_scoring_speedup_and_bitwise_totals():
    harness = _Harness()
    results = {"blocks": NUM_BLOCKS, "batch_sizes": {}}
    ratios_at_bar = []

    for batch_size in BATCH_SIZES:
        population = harness.population(batch_size)

        # Correctness first: all three paths agree bit for bit.
        scalar_totals, _ = harness.run_scalar(population)
        incremental_totals, _ = harness.run_incremental(population)
        batch_totals, _ = harness.run_batch(population)
        assert batch_totals == scalar_totals
        assert incremental_totals == scalar_totals

        best = {"scalar": 0.0, "incremental": 0.0, "batch": 0.0}
        for _ in range(REPETITIONS):
            for name, runner in (
                ("scalar", harness.run_scalar),
                ("incremental", harness.run_incremental),
                ("batch", harness.run_batch),
            ):
                _, seconds = runner(population)
                best[name] = max(best[name], batch_size / max(seconds, 1e-12))
        results["batch_sizes"][str(batch_size)] = {
            f"{name}_candidates_per_second": round(rate, 1)
            for name, rate in best.items()
        }
        if batch_size == ASSERT_BATCH:
            ratios_at_bar = [best["batch"] / max(best["scalar"], 1e-12)]

    with open(RESULTS_FILE, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(f"\n{json.dumps(results, indent=2, sort_keys=True)}")

    speedup = ratios_at_bar[0]
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized scoring speedup {speedup:.2f}x over the scalar loop at "
        f"batch {ASSERT_BATCH} is below the {MIN_SPEEDUP}x bar"
    )
