"""Unified-API dispatch overhead — the redesign must be (nearly) free.

PR 2 routed every engine through one ``Placer`` protocol returning one
frozen ``Placement``.  This bench asserts the unified path costs no more
than a hair over calling ``PlacementInstantiator`` directly:

* ``make_placer({"kind": "mps", ...})`` hands back the instantiator itself
  (no wrapper object, no extra hop), so ``place()`` *is* ``instantiate()``.
* The per-call additions that remain (the timing context, the tier-stat
  update, the immutable ``Placement`` construction) must stay under 5%
  of the direct instantiation time.

Timing two code paths that each take well under a millisecond is noisy,
so both sides are measured over several interleaved repetitions and the
*best* ratio is asserted — a scheduler hiccup in one repetition cannot
fail the build.
"""

import random
import time

from repro.api import Placement, make_placer
from repro.core.instantiator import PlacementInstantiator

#: Queries per measured repetition.
QUERIES = 300
#: Interleaved (direct, unified) repetitions; the best ratio is asserted.
REPETITIONS = 5
#: Acceptance bar: unified dispatch adds < 5% over direct instantiation.
MAX_OVERHEAD = 1.05


def _workload(structure, count=QUERIES, seed=11):
    rng = random.Random(seed)
    circuit = structure.circuit
    vectors = [list(p.best_dims) for p in structure if p.best_dims]
    while len(vectors) < 8:
        vectors.append(
            [
                (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
                for b in circuit.blocks
            ]
        )
    return [vectors[i % len(vectors)] for i in range(count)]


def _time_queries(call, workload):
    start = time.perf_counter()
    for dims in workload:
        call(dims)
    return time.perf_counter() - start


def test_unified_dispatch_overhead(opamp_structure):
    generation, generator = opamp_structure
    structure = generation.structure
    workload = _workload(structure)

    direct = PlacementInstantiator(structure, generator.cost_function)
    unified = make_placer({"kind": "mps", "structure": structure}, structure.circuit)
    assert isinstance(unified, PlacementInstantiator)  # no wrapper layer at all
    assert isinstance(unified.place(workload[0]), Placement)

    ratios = []
    for _ in range(REPETITIONS):
        direct_seconds = _time_queries(direct.instantiate, workload)
        unified_seconds = _time_queries(unified.place, workload)
        ratios.append(unified_seconds / max(direct_seconds, 1e-12))

    best_ratio = min(ratios)
    print(f"\ndispatch overhead ratios (unified/direct): {[round(r, 4) for r in ratios]}")
    assert best_ratio < MAX_OVERHEAD, (
        f"unified dispatch overhead {best_ratio:.3f}x exceeds the {MAX_OVERHEAD}x bar "
        f"(all repetitions: {[round(r, 3) for r in ratios]})"
    )


def test_service_batch_not_slower_than_unbatched_service(opamp_structure, tmp_path):
    """Sanity: the service's native batch path beats its own sequential loop."""
    generation, _ = opamp_structure
    structure = generation.structure
    circuit = structure.circuit
    workload = _workload(structure, count=128)

    from repro.core.generator import GeneratorConfig
    from repro.service.engine import PlacementService

    def warm_placer():
        # Adopting the pre-generated structure means neither side pays a
        # generation run inside the timed region.
        service = PlacementService(default_config=GeneratorConfig.smoke(seed=0))
        return make_placer(
            {"kind": "service", "service": service, "structure": structure}, circuit
        )

    sequential = warm_placer()
    batched = warm_placer()

    start = time.perf_counter()
    for dims in workload:
        sequential.place(dims)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    results = batched.place_batch(workload)
    batch_seconds = time.perf_counter() - start

    assert len(results) == len(workload)
    assert batch_seconds <= sequential_seconds * 1.5
