"""Ablation — the two readings of Equation 6 (Optimize Ranges).

As printed, Equation 6 multiplies the interval length by average/best
(>= 1), which cannot tighten the interval; the prose says the interval
should tighten as the average cost drifts from the best cost.  DESIGN.md
documents the substitution; this bench quantifies the difference: the
intent reading produces strictly narrower stored intervals (and therefore
more, finer-grained placements can coexist).
"""

import pytest

from repro.core.bdio import BDIOConfig, BlockDimensionsIntervalOptimizer, EQ6_INTENT, EQ6_LITERAL
from repro.core.expansion import expand_placement
from repro.cost.cost_function import PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from repro.benchcircuits.library import get_benchmark


def _setup():
    circuit = get_benchmark("two_stage_opamp")
    bounds = FloorplanBounds.for_blocks(circuit.max_dims(), whitespace_factor=2.0)
    cost_fn = PlacementCostFunction(circuit, bounds)
    anchors = [(0, 0), (40, 0), (0, 40), (40, 40), (80, 0)]
    ranges = expand_placement(circuit, anchors, bounds)
    return circuit, cost_fn, anchors, ranges


@pytest.mark.parametrize("mode", [EQ6_INTENT, EQ6_LITERAL])
def test_eq6_reading(benchmark, mode):
    circuit, cost_fn, anchors, ranges = _setup()
    bdio = BlockDimensionsIntervalOptimizer(
        cost_fn, BDIOConfig(max_iterations=120, eq6_mode=mode), seed=0
    )

    result = benchmark.pedantic(lambda: bdio.optimize(anchors, ranges), rounds=2, iterations=1)

    expanded_volume = 1
    reduced_volume = 1
    for expanded, reduced in zip(ranges, result.reduced_ranges):
        expanded_volume *= expanded.volume
        reduced_volume *= reduced.volume
    shrink = reduced_volume / expanded_volume
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["volume_shrink_factor"] = round(shrink, 4)

    if mode == EQ6_INTENT:
        # The intent reading tightens the intervals around the best dims.
        assert shrink < 1.0
    else:
        # The literal reading cannot tighten beyond the expansion result.
        assert shrink == pytest.approx(1.0)
