"""Ablation — overlap-resolution policy.

The paper shrinks the placement with the *higher average cost* when two
placements' dimension boxes overlap.  This bench compares that rule with
two simpler alternatives (always shrink the newer placement; discard the
newer placement) on the number of stored placements, the coverage reached
and the mean cost of the placements that survive.
"""

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.explorer import ExplorerConfig
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.core.bdio import BDIOConfig
from repro.core.overlap_resolution import POLICIES


@pytest.mark.parametrize("policy", list(POLICIES))
def test_overlap_resolution_policy(benchmark, policy):
    circuit = get_benchmark("two_stage_opamp")
    config = GeneratorConfig(
        explorer=ExplorerConfig(
            max_iterations=10,
            coverage_target=0.99,
            coverage_metric="volume",
            overlap_policy=policy,
            initial_placement="packed",
        ),
        bdio=BDIOConfig(max_iterations=60),
        whitespace_factor=2.0,
        seed=0,
    )

    def generate():
        return MultiPlacementGenerator(circuit, config).generate_with_stats()

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    structure = result.structure
    structure.check_invariants()
    costs = [p.average_cost for p in structure]
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["placements"] = structure.num_placements
    benchmark.extra_info["coverage"] = round(structure.marginal_coverage(), 3)
    benchmark.extra_info["mean_stored_cost"] = round(sum(costs) / len(costs), 2) if costs else 0.0
    assert structure.num_placements >= 1
