"""Parallel placement service throughput — process fan-out vs. single process.

What the parallel subsystem buys, in numbers:

* **single-process baseline** — the historical path: one process answering
  the workload one ``instantiate`` call at a time (no dedup, no memo, no
  pool), exactly what a non-batch caller pays per query.
* **parallel batch at workers ∈ {1, 2, 4}** — the ``"parallel"`` engine's
  full pipeline: batch-level dedup, sharding into picklable jobs, process
  fan-out over a shared structure registry, deterministic reassembly.
* **acceptance checks** — ``workers=4`` must answer the 256-query workload
  at ≥ 2x the single-process baseline throughput, and the placements and
  costs must be bit-identical across every worker count.

On a single-core machine the 2x comes from dedup + batching alone (the
pool adds overhead, not speed); every additional core stacks real
parallelism on top — the CI runners' 4 vCPUs see both effects.
"""

import random
import shutil
import tempfile
import time

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.instantiator import PlacementInstantiator
from repro.parallel.placer import ParallelPlacer
from repro.parallel.sharding import ShardedStructureRegistry
from benchmarks.conftest import bench_scale

CIRCUIT = "two_stage_opamp"
WORKLOAD_SIZE = 256
#: Unique dimension vectors behind the duplicated-heavy workload (synthesis
#: batches collapse heavily after integer-grid snapping; see PR 1's bench).
UNIQUE_VECTORS = 16
WORKER_COUNTS = [1, 2, 4]
ACCEPTANCE_SPEEDUP = 2.0


def make_workload(circuit, structure, size, unique=UNIQUE_VECTORS, seed=1):
    """``size`` queries drawn round-robin from ``unique`` mixed vectors."""
    rng = random.Random(seed)
    vectors = [list(p.best_dims) for p in structure if p.best_dims][: unique // 2]
    while len(vectors) < unique:
        vectors.append(
            [
                (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
                for b in circuit.blocks
            ]
        )
    return [vectors[i % len(vectors)] for i in range(size)]


@pytest.fixture(scope="module")
def parallel_setup():
    scale = bench_scale()
    circuit = get_benchmark(CIRCUIT)
    config = scale.generator_config(circuit, seed=0)
    root = tempfile.mkdtemp(prefix="repro-bench-parallel-")
    registry = ShardedStructureRegistry(root)
    structure = registry.get_or_generate(circuit, config)  # one-time offline cost
    yield circuit, config, root, structure
    shutil.rmtree(root, ignore_errors=True)


def service_spec(root, config):
    """The inner spec every worker reconstructs its engine from."""
    return {"kind": "service", "registry": root, "config": config}


def best_of(fn, repeats=3):
    """Minimum wall-clock over ``repeats`` runs (robust to scheduler noise)."""
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return best_seconds, result


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_batch_throughput(benchmark, parallel_setup, workers):
    """Queries/sec of the parallel batch path per worker count (warm pool)."""
    circuit, config, root, structure = parallel_setup
    workload = make_workload(circuit, structure, WORKLOAD_SIZE)
    with ParallelPlacer(circuit, service_spec(root, config), workers=workers) as placer:
        placer.place_batch(workload)  # warm the pool and the worker caches
        results = benchmark(lambda: placer.place_batch(workload))
    assert len(results) == WORKLOAD_SIZE
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["queries_per_second"] = round(
        WORKLOAD_SIZE / benchmark.stats["mean"]
    )


def test_acceptance_4_workers_at_least_2x_single_process(parallel_setup):
    """The ISSUE acceptance bar: workers=4 >= 2x single-process throughput."""
    circuit, config, root, structure = parallel_setup
    workload = make_workload(circuit, structure, WORKLOAD_SIZE)

    # Baseline: one process, one instantiate call per query — no dedup, no
    # memo, no pool (the per-query cost every non-batch caller pays).
    baseline = PlacementInstantiator(structure)
    baseline_seconds, baseline_results = best_of(
        lambda: [baseline.instantiate(dims) for dims in workload]
    )

    with ParallelPlacer(circuit, service_spec(root, config), workers=4) as placer:
        placer.place_batch(workload)  # warm pool + per-worker structures
        parallel_seconds, parallel_results = best_of(
            lambda: placer.place_batch(workload)
        )

    # Same answers...
    for got, expected in zip(parallel_results, baseline_results):
        assert dict(got.rects) == dict(expected.rects)
        assert got.source == expected.source
    # ...at >= 2x the throughput.
    speedup = baseline_seconds / parallel_seconds
    print(
        f"\nsingle-process: {baseline_seconds * 1000:.1f}ms, "
        f"workers=4 batch: {parallel_seconds * 1000:.1f}ms, speedup: {speedup:.1f}x"
    )
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"workers=4 batch only {speedup:.2f}x the single-process baseline "
        f"(needs >= {ACCEPTANCE_SPEEDUP}x)"
    )


def test_acceptance_bit_identical_across_worker_counts(parallel_setup):
    """Fixed workload => identical placements and costs at any worker count."""
    circuit, config, root, structure = parallel_setup
    workload = make_workload(circuit, structure, 64)
    batches = {}
    for workers in WORKER_COUNTS:
        with ParallelPlacer(
            circuit, service_spec(root, config), workers=workers
        ) as placer:
            batches[workers] = placer.place_batch(workload)
    reference = batches[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        for got, expected in zip(batches[workers], reference):
            assert dict(got.rects) == dict(expected.rects)
            assert got.cost == expected.cost
            assert got.source == expected.source
