"""Server load benchmark: a duplicate-heavy trace against a live server.

A load generator replays a >=2000-query duplicate-heavy trace (the
``bench_service_throughput`` workload shape: 16 unique vectors, half of
them stored best dimensions) over real sockets against a
:class:`~repro.serve.harness.ServerHarness`, in two request shapes:

* **trace replay** — clients stream the trace through ``/place_batch``
  in chunks, the way a synthesis sweep replays its query log.  This is
  the throughput acceptance bar: at least **5x sequential-cold**.
* **concurrent single queries** — many clients firing one ``/place`` at
  a time, which exercises the micro-batcher; reported with client-side
  p50/p95/p99 latency and the measured coalescing ratio.

**The sequential-cold baseline** is what the trace costs *without* an
always-on server: every query pays a cold service round — fresh
:class:`PlacementService`, structure loaded from disk, empty caches —
exactly the bill for a short-lived process per query.  The in-process
warm-vs-cold instantiator comparison (no sockets, no serving) already
lives in ``bench_service_throughput.py``; its sequential-cold number is
reported here too (as ``cold_instantiator_qps``) for context.

Results are printed and written to ``BENCH_server.json`` next to the
working directory.
"""

import json
import random
import shutil
import tempfile
import threading
import time

import pytest

from repro import obs
from repro.benchcircuits.library import get_benchmark
from repro.core.instantiator import PlacementInstantiator
from repro.parallel.sharding import ShardOwnerMap
from repro.serve import ServerConfig, ServerHarness
from repro.service.engine import PlacementService
from repro.service.fingerprint import structure_key
from repro.service.registry import StructureRegistry
from benchmarks.conftest import bench_scale
from benchmarks.bench_service_throughput import best_of, make_workload

CIRCUIT = "two_stage_opamp"
#: The replayed trace: >= 2000 queries over 16 unique vectors.
TRACE_QUERIES = 2000
#: The acceptance bar: server replay >= 5x the sequential-cold baseline.
ACCEPTANCE_SPEEDUP = 5.0
#: Client threads for the replay and single-query phases.
REPLAY_CLIENTS = 8
PLACE_CLIENTS = 16
#: Queries per /place_batch request during trace replay.
REPLAY_CHUNK = 125

RESULTS_FILE = "BENCH_server.json"

#: The shard-affinity comparison: worker processes, candidate circuits
#: (small ones — the fixture generates a structure per pick), and the
#: acceptance bar for shard-affine vs shard-blind p95.
AFFINITY_WORKERS = 4
AFFINITY_CANDIDATES = [
    "two_stage_opamp",
    "single_ended_opamp",
    "circ01",
    "circ02",
    "circ06",
    "mixer",
]
AFFINITY_P95_SPEEDUP = 1.2
#: Queries per mixed /place_batch request (each spans every shard).
AFFINITY_CHUNK = 50


@pytest.fixture(scope="module")
def server_setup():
    scale = bench_scale()
    circuit = get_benchmark(CIRCUIT)
    config = scale.generator_config(circuit, seed=0)
    root = tempfile.mkdtemp(prefix="repro-bench-serve-")
    structure = StructureRegistry(root).get_or_generate(circuit, config)
    trace = make_workload(circuit, structure, TRACE_QUERIES)
    yield circuit, config, root, structure, trace
    shutil.rmtree(root, ignore_errors=True)


def warm_harness(root, config, server_config, warm_dims):
    service = PlacementService(StructureRegistry(root), default_config=config)
    harness = ServerHarness(service, server_config).start()
    warm = harness.client().place(CIRCUIT, warm_dims)
    assert warm.ok, (warm.status, warm.payload)
    return harness


def fan_out(trace, n_threads, worker):
    """Run ``worker(part)`` over ``n_threads`` interleaved trace slices."""
    parts = [trace[i::n_threads] for i in range(n_threads)]
    threads = [threading.Thread(target=worker, args=(part,)) for part in parts]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def percentile(sorted_values, q):
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def write_results(results):
    with open(RESULTS_FILE, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(f"\n{json.dumps(results, indent=2, sort_keys=True)}")


def test_acceptance_trace_replay_5x_sequential_cold(server_setup):
    """Trace replay through the server >= 5x the sequential-cold baseline."""
    circuit, config, root, structure, trace = server_setup

    # Baseline 1 (the acceptance denominator): every query pays a cold
    # service round — fresh service, disk load, empty caches.
    def cold_service_queries(queries):
        for dims in queries:
            PlacementService(
                StructureRegistry(root), default_config=config
            ).instantiate(circuit, dims)

    sample = trace[:: max(1, len(trace) // 100)]  # 100 queries is plenty
    cold_seconds, _ = best_of(lambda: cold_service_queries(sample), repeats=3)
    cold_service_qps = len(sample) / cold_seconds

    # Baseline 2 (context): sequential cold instantiator, no disk, no server.
    cold = PlacementInstantiator(structure)
    instantiator_seconds, _ = best_of(
        lambda: [cold.instantiate(dims) for dims in trace]
    )
    cold_instantiator_qps = len(trace) / instantiator_seconds

    server_config = ServerConfig(
        window_seconds=0.001, max_batch=64, max_inflight=8192
    )
    harness = warm_harness(root, config, server_config, trace[0])
    try:

        def replay(part):
            client = harness.client()
            for start in range(0, len(part), REPLAY_CHUNK):
                response = client.place_batch(
                    CIRCUIT, part[start : start + REPLAY_CHUNK]
                )
                assert response.ok, (response.status, response.payload)

        wall = fan_out(trace, REPLAY_CLIENTS, replay)
    finally:
        harness.stop()
    replay_qps = len(trace) / wall
    speedup = replay_qps / cold_service_qps

    results = {
        "trace_queries": len(trace),
        "unique_vectors": len({tuple(map(tuple, dims)) for dims in trace}),
        "cold_service_qps": round(cold_service_qps),
        "cold_instantiator_qps": round(cold_instantiator_qps),
        "replay_qps": round(replay_qps),
        "replay_clients": REPLAY_CLIENTS,
        "replay_chunk": REPLAY_CHUNK,
        "speedup_vs_sequential_cold": round(speedup, 1),
    }
    write_results(results)
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"server replay only {speedup:.1f}x sequential cold "
        f"({replay_qps:.0f} vs {cold_service_qps:.0f} q/s, "
        f"needs >= {ACCEPTANCE_SPEEDUP}x)"
    )


def test_single_query_latency_percentiles(server_setup):
    """Concurrent /place load: p50/p95/p99 and the coalescing ratio."""
    circuit, config, root, structure, trace = server_setup
    server_config = ServerConfig(
        window_seconds=0.001, max_batch=64, max_inflight=4096
    )
    harness = warm_harness(root, config, server_config, trace[0])
    latencies = []
    lock = threading.Lock()
    try:

        def fire(part):
            client = harness.client()
            local = []
            for dims in part:
                start = time.perf_counter()
                response = client.place(CIRCUIT, dims)
                local.append(time.perf_counter() - start)
                assert response.ok, (response.status, response.payload)
            with lock:
                latencies.extend(local)

        wall = fan_out(trace, PLACE_CLIENTS, fire)
        snapshot = harness.server.metrics.snapshot()
    finally:
        harness.stop()

    latencies.sort()
    place_qps = len(trace) / wall
    dispatches = snapshot["serve.dispatches"]
    coalesced = snapshot["serve.coalesced_queries"]
    results = {
        "place_qps": round(place_qps),
        "place_clients": PLACE_CLIENTS,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 2),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 2),
        "dispatches": int(dispatches),
        "mean_batch_fill": round(coalesced / max(1, dispatches), 1),
    }
    try:
        with open(RESULTS_FILE, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged.update(results)
    write_results(merged)

    # Micro-batching must be doing real work: far fewer dispatches than
    # queries, and single-query latency bounded even under 16-way load.
    assert dispatches < len(trace) / 2
    assert results["p99_ms"] < 1000.0
    assert results["p50_ms"] < 250.0


def test_traced_replay_overhead(server_setup):
    """Tracing on costs < 5% of request latency.

    One client replays ``/place_batch`` chunks sequentially, alternating
    blocks with spans off and on, and the *median* per-request latency of
    each mode is compared — medians over ~60 samples per mode are stable
    where multi-threaded wall-clock on a shared CI box is not (the
    concurrent-replay throughput of both modes is still reported, as
    context, from one replay each).
    """
    circuit, config, root, structure, trace = server_setup
    server_config = ServerConfig(
        window_seconds=0.001, max_batch=64, max_inflight=8192
    )
    harness = warm_harness(root, config, server_config, trace[0])
    client = harness.client()
    chunk = trace[:REPLAY_CHUNK]
    latencies = {"untraced": [], "traced": []}
    replay_qps = {}

    def block(mode, requests=15):
        obs.configure(enabled=(mode == "traced"))
        for _ in range(requests):
            start = time.perf_counter()
            response = client.place_batch(CIRCUIT, chunk)
            latencies[mode].append(time.perf_counter() - start)
            assert response.ok, (response.status, response.payload)
        obs.clear_spans()

    def replay(part):
        part_client = harness.client()
        for start in range(0, len(part), REPLAY_CHUNK):
            response = part_client.place_batch(
                CIRCUIT, part[start : start + REPLAY_CHUNK]
            )
            assert response.ok, (response.status, response.payload)

    try:
        # Uncounted warmup of both modes: the first traced block pays
        # one-time costs (span.* histogram creation, sampler wiring).
        for mode in ("untraced", "traced"):
            block(mode, requests=5)
            latencies[mode].clear()
        # Alternating blocks, so machine drift hits both modes equally.
        for _ in range(4):
            block("untraced")
            block("traced")
        # Context numbers: one concurrent replay per mode.
        for mode in ("untraced", "traced"):
            obs.configure(enabled=(mode == "traced"))
            replay_qps[mode] = len(trace) / fan_out(trace, REPLAY_CLIENTS, replay)
            obs.clear_spans()
    finally:
        harness.stop()
        obs.reset()

    medians = {}
    for mode, samples in latencies.items():
        samples.sort()
        medians[mode] = samples[len(samples) // 2]
    overhead_pct = (medians["traced"] / medians["untraced"] - 1.0) * 100.0

    results = {
        "untraced_replay_qps": round(replay_qps["untraced"]),
        "traced_replay_qps": round(replay_qps["traced"]),
        "untraced_median_ms": round(medians["untraced"] * 1000, 3),
        "traced_median_ms": round(medians["traced"] * 1000, 3),
        "traced_overhead_pct": round(overhead_pct, 2),
    }
    try:
        with open(RESULTS_FILE, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged.update(results)
    write_results(merged)

    assert overhead_pct < 5.0, (
        f"tracing adds {overhead_pct:.1f}% to median request latency "
        f"({medians['traced']*1000:.2f} ms traced vs "
        f"{medians['untraced']*1000:.2f} ms untraced, budget is 5%)"
    )


@pytest.fixture(scope="module")
def affinity_setup():
    """A multi-circuit registry plus a mixed duplicate-heavy trace.

    Picks circuits greedily so their fingerprint shards land on as many
    distinct worker slots as possible — a trace whose shards all hash to
    one owner would serialize the affine run and measure nothing.
    """
    scale = bench_scale()
    root = tempfile.mkdtemp(prefix="repro-bench-affinity-")
    registry = StructureRegistry(root)
    shared_config = scale.generator_config(get_benchmark(CIRCUIT), seed=0)
    owners = ShardOwnerMap(workers=AFFINITY_WORKERS)
    picked, slots_taken = [], set()
    for name in AFFINITY_CANDIDATES:
        slot = owners.owner_for_key(structure_key(get_benchmark(name), shared_config))
        if slot not in slots_taken or len(AFFINITY_CANDIDATES) - len(picked) <= (
            AFFINITY_WORKERS - len(picked)
        ):
            picked.append(name)
            slots_taken.add(slot)
        if len(picked) == AFFINITY_WORKERS:
            break
    while len(picked) < AFFINITY_WORKERS:
        picked.append(
            next(name for name in AFFINITY_CANDIDATES if name not in picked)
        )
    per_circuit = TRACE_QUERIES // len(picked)
    trace = []
    for name in picked:
        circuit = get_benchmark(name)
        structure = registry.get_or_generate(circuit, shared_config)
        workload = make_workload(circuit, structure, per_circuit)
        trace.append([{"circuit": name, "dims": dims} for dims in workload])
    # Shuffle (fixed seed), so every replay chunk spans every shard and
    # the server really splits each request's batch before fan-out.
    mixed = [query for round_ in zip(*trace) for query in round_]
    random.Random(11).shuffle(mixed)
    yield root, shared_config, picked, mixed
    shutil.rmtree(root, ignore_errors=True)


def _replay_mixed(harness, mixed, chunk=AFFINITY_CHUNK, record_shards=None):
    """Replay the mixed trace; returns (wall_seconds, per-request latencies)."""
    latencies = []
    lock = threading.Lock()

    def replay(part):
        client = harness.client()
        local, shards_local = [], []
        for start in range(0, len(part), chunk):
            begin = time.perf_counter()
            response = client.place_queries(part[start : start + chunk])
            local.append(time.perf_counter() - begin)
            assert response.ok, (response.status, response.payload)
            shards_local.extend(response.payload.get("shards", []))
        with lock:
            latencies.extend(local)
            if record_shards is not None:
                record_shards.extend(shards_local)

    wall = fan_out(mixed, REPLAY_CLIENTS, replay)
    latencies.sort()
    return wall, latencies


def test_affinity_beats_shard_blind_dispatch(affinity_setup):
    """Shard-affine routing vs shard-blind fan-out on the mixed trace.

    Same trace, same worker count, same server — only
    ``ServerConfig.affinity`` flips.  Shard-blind pays ``workers`` IPC
    round trips and a full-pool barrier per sub-batch; shard-affine pays
    one round trip to the owner process whose caches stay warm across
    chunks.  The bar: shard-blind p95 >= 1.2x the shard-affine p95.
    """
    root, shared_config, picked, mixed = affinity_setup
    p95, qps, hit_stats, shard_elapsed = {}, {}, {}, []
    for mode, affine in (("affinity_off", False), ("affinity_on", True)):
        server_config = ServerConfig(
            window_seconds=0.001,
            max_batch=64,
            max_inflight=8192,
            service_workers=AFFINITY_WORKERS,
            affinity=affine,
            executor_threads=8,
        )
        service = PlacementService(
            StructureRegistry(root), default_config=shared_config
        )
        harness = ServerHarness(service, server_config).start()
        try:
            # Warm every circuit's worker-side caches before timing.
            warm_client = harness.client()
            for _ in range(2):
                warm = warm_client.place_queries(mixed[: 4 * len(picked)])
                assert warm.ok, (warm.status, warm.payload)
            record = shard_elapsed if affine else None
            wall, latencies = _replay_mixed(harness, mixed, record_shards=record)
            if affine:
                hit_stats = harness.client().statusz().payload["affinity"]
        finally:
            harness.stop()
        p95[mode] = percentile(latencies, 0.95)
        qps[mode] = len(mixed) / wall

    # Per-shard p95 of the affine run, from the per-response shard timings.
    by_shard = {}
    for entry in shard_elapsed:
        by_shard.setdefault(entry["shard"], []).append(entry["elapsed_seconds"])
    shard_p95 = {
        shard: {
            "p95_ms": round(percentile(sorted(values), 0.95) * 1000, 2),
            "dispatches": len(values),
        }
        for shard, values in by_shard.items()
    }
    speedup = p95["affinity_off"] / p95["affinity_on"]

    results = {
        "affinity_circuits": picked,
        "affinity_workers": AFFINITY_WORKERS,
        "affinity_off_p95_ms": round(p95["affinity_off"] * 1000, 2),
        "affinity_on_p95_ms": round(p95["affinity_on"] * 1000, 2),
        "affinity_off_qps": round(qps["affinity_off"]),
        "affinity_on_qps": round(qps["affinity_on"]),
        "affinity_p95_speedup": round(speedup, 2),
        "affinity_hits": hit_stats.get("hits"),
        "affinity_misses": hit_stats.get("misses"),
        "affinity_shard_p95": shard_p95,
    }
    try:
        with open(RESULTS_FILE, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged.update(results)
    write_results(merged)

    # The affine run must actually have pinned its dispatches...
    assert hit_stats.get("active"), hit_stats
    assert hit_stats.get("hits", 0) > 0
    # ...and beat the shard-blind configuration where it counts.
    assert speedup >= AFFINITY_P95_SPEEDUP, (
        f"shard-affine p95 only {speedup:.2f}x better than shard-blind "
        f"({results['affinity_on_p95_ms']} ms vs "
        f"{results['affinity_off_p95_ms']} ms, needs >= {AFFINITY_P95_SPEEDUP}x)"
    )


def test_overload_sheds_and_never_hangs(server_setup):
    """A full inflight queue answers 429 + Retry-After promptly, never hangs."""
    circuit, config, root, structure, trace = server_setup
    server_config = ServerConfig(
        window_seconds=0.05, max_batch=4, max_inflight=2
    )
    harness = warm_harness(root, config, server_config, trace[0])
    outcomes = []
    lock = threading.Lock()
    try:

        def slam(part):
            client = harness.client()
            for dims in part[:4]:
                response = client.place(CIRCUIT, dims)
                with lock:
                    outcomes.append((response.status, response.retry_after))

        threads = [
            threading.Thread(target=slam, args=(trace[i::24],)) for i in range(24)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "a shed request hung instead of answering"
    finally:
        harness.stop()

    statuses = {status for status, _ in outcomes}
    assert statuses <= {200, 429}
    assert 429 in statuses, "overload never triggered a shed"
    assert all(
        retry_after is not None and retry_after >= 1
        for status, retry_after in outcomes
        if status == 429
    )
