"""Incremental vs from-scratch annealing — the delta engine must earn its keep.

PR 4 routed every optimizer's inner loop through ``repro.eval``'s
incremental evaluator.  This bench anneals block anchors on a 64-module
synthetic circuit twice with the same seed:

* the historical path, re-scoring every proposal with
  ``PlacementCostFunction.evaluate_layout`` from scratch, and
* the delta path, pricing each proposal over only the nets and grid
  neighbourhoods it touches.

Two bars are asserted:

* the delta path is at least :data:`MIN_SPEEDUP` x faster (best of
  several interleaved repetitions, so one scheduler hiccup cannot fail
  the build), and
* the fixed-seed cost trajectories are *identical* — every accepted cost,
  the best cost and the final anchors match exactly, because the delta
  arithmetic is bitwise-equal to the from-scratch evaluation.
"""

import random
import time

from repro.annealing.annealer import SimulatedAnnealer
from repro.annealing.schedule import GeometricSchedule
from repro.baselines.annealing_placer import AnnealingPlacerConfig
from repro.circuit.builder import CircuitBuilder
from repro.eval.engines import PerturbDeltaEngine, anchor_update
from repro.cost.cost_function import CostWeights, PlacementCostFunction
from repro.geometry.floorplan import FloorplanBounds
from repro.geometry.packing import shelf_pack

#: Modules in the synthetic circuit (past every small-n fast path).
NUM_BLOCKS = 64
#: Proposals per annealing run.
ITERATIONS = 1200
#: Interleaved (scratch, incremental) repetitions; the best ratio is asserted.
REPETITIONS = 3
#: Acceptance bar: the delta path is at least this many times faster.
MIN_SPEEDUP = 3.0


def build_synthetic_circuit(num_blocks=NUM_BLOCKS):
    """A 64-module circuit with local, global and clustered connectivity."""
    builder = CircuitBuilder("synthetic64")
    for i in range(num_blocks):
        builder.block(f"m{i}", 4, 10, 4, 10)
    names = [f"m{i}" for i in range(num_blocks)]
    for i in range(num_blocks - 1):
        builder.simple_net(f"chain{i}", [names[i], names[i + 1]])
    for start in range(0, num_blocks, 8):
        builder.simple_net(f"bus{start}", names[start : start + 8], weight=0.5)
    for i in range(0, num_blocks, 4):
        builder.simple_net(f"cross{i}", [names[i], names[(i + num_blocks // 2) % num_blocks]])
    return builder.build()


class _Harness:
    """One annealing problem instance shared by both evaluation paths."""

    def __init__(self, seed=17):
        self.circuit = build_synthetic_circuit()
        self.bounds = FloorplanBounds.for_blocks(self.circuit.max_dims(), whitespace_factor=1.8)
        self.cost_fn = PlacementCostFunction(
            self.circuit, self.bounds, weights=CostWeights().with_legalization()
        )
        # Single-module translations plus pair swaps — the classic SA
        # placement move set delta evaluation is built for (the placer's
        # default moves a *fraction* of all blocks per proposal, which is
        # a different, coarser workload).
        self.config = AnnealingPlacerConfig(perturb_fraction=1.0 / NUM_BLOCKS)
        rng = random.Random(seed)
        order = list(range(self.circuit.num_blocks))
        rng.shuffle(order)
        self.dims = tuple(
            (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
            for b in self.circuit.blocks
        )
        self.initial = tuple(shelf_pack(self.dims, max_width=self.bounds.width, order=order))

    def _perturb(self, anchors, dims, rng):
        # The placer's move rule, bound to this harness's canvas/config.
        config = self.config
        new_anchors = list(anchors)
        if rng.random() < config.swap_probability:
            i, j = rng.sample(range(len(anchors)), 2)
            new_anchors[i], new_anchors[j] = new_anchors[j], new_anchors[i]
            return tuple(new_anchors)
        count = max(1, int(round(len(anchors) * config.perturb_fraction)))
        max_dx = max(1, int(self.bounds.width * config.perturb_step_fraction))
        max_dy = max(1, int(self.bounds.height * config.perturb_step_fraction))
        for index in rng.sample(range(len(anchors)), count):
            x, y = new_anchors[index]
            w, h = dims[index]
            new_anchors[index] = self.bounds.clamp_anchor(
                x + rng.randint(-max_dx, max_dx), y + rng.randint(-max_dy, max_dy), w, h
            )
        return tuple(new_anchors)

    def _annealer(self, seed, evaluate=None, propose=None):
        return SimulatedAnnealer(
            evaluate=evaluate,
            propose=propose,
            schedule=GeometricSchedule(
                initial_temperature=200.0, alpha=0.95, minimum_temperature=1e-3
            ),
            moves_per_temperature=25,
            max_iterations=ITERATIONS,
            record_history=True,
            seed=seed,
        )

    def run_scratch(self, seed=23):
        annealer = self._annealer(
            seed,
            evaluate=lambda anchors: self.cost_fn.evaluate_layout(anchors, self.dims).total,
            propose=lambda anchors, rng: self._perturb(anchors, self.dims, rng),
        )
        start = time.perf_counter()
        result = annealer.run(self.initial)
        return result, time.perf_counter() - start

    def run_incremental(self, seed=23):
        annealer = self._annealer(seed)
        evaluator = self.cost_fn.bind(self.initial, self.dims)
        engine = PerturbDeltaEngine(
            evaluator,
            self.initial,
            lambda anchors, rng: self._perturb(anchors, self.dims, rng),
            anchor_update,
        )
        start = time.perf_counter()
        result = annealer.run_incremental(engine)
        return result, time.perf_counter() - start


def test_incremental_annealing_speedup_and_identical_trajectory():
    harness = _Harness()

    # Correctness first: same seed, bit-identical trajectory.
    scratch_result, _ = harness.run_scratch()
    incremental_result, _ = harness.run_incremental()
    assert incremental_result.cost_history == scratch_result.cost_history
    assert incremental_result.best_cost == scratch_result.best_cost
    assert incremental_result.best_state == scratch_result.best_state
    assert incremental_result.accepted_moves == scratch_result.accepted_moves

    # Then throughput: interleave repetitions and assert the best ratio.
    ratios = []
    for _ in range(REPETITIONS):
        _, scratch_seconds = harness.run_scratch()
        _, incremental_seconds = harness.run_incremental()
        ratios.append(scratch_seconds / max(incremental_seconds, 1e-12))
    best = max(ratios)
    per_move_us = 1e6 * incremental_seconds / ITERATIONS
    print(
        f"\nincremental speedup over from-scratch ({NUM_BLOCKS} blocks, "
        f"{ITERATIONS} moves): {[round(r, 2) for r in ratios]} "
        f"(~{per_move_us:.0f}us per incremental move)"
    )
    assert best >= MIN_SPEEDUP, (
        f"incremental evaluation speedup {best:.2f}x is below the {MIN_SPEEDUP}x bar "
        f"(all repetitions: {[round(r, 2) for r in ratios]})"
    )
