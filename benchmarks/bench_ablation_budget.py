"""Ablation — nested-SA budget versus structure quality.

Sweeps the outer (explorer) iteration budget and reports how the number of
stored placements, the coverage and the mean instantiation cost respond —
the knob that traded the paper's hours of generation time for placement
quality.
"""

import random

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.bdio import BDIOConfig
from repro.core.explorer import ExplorerConfig
from repro.core.generator import GeneratorConfig, MultiPlacementGenerator
from repro.core.instantiator import PlacementInstantiator


@pytest.mark.parametrize("outer_iterations", [4, 12, 24])
def test_budget_vs_quality(benchmark, outer_iterations):
    circuit = get_benchmark("two_stage_opamp")
    config = GeneratorConfig(
        explorer=ExplorerConfig(
            max_iterations=outer_iterations,
            coverage_target=0.99,
            coverage_metric="volume",
            initial_placement="packed",
        ),
        bdio=BDIOConfig(max_iterations=60),
        whitespace_factor=2.0,
        seed=0,
    )

    def generate():
        return MultiPlacementGenerator(circuit, config).generate()

    structure = benchmark.pedantic(generate, rounds=1, iterations=1)
    instantiator = PlacementInstantiator(structure)
    rng = random.Random(0)
    costs = []
    hits = 0
    for _ in range(40):
        dims = [
            (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
            for b in circuit.blocks
        ]
        placement = instantiator.instantiate(dims)
        costs.append(placement.total_cost)
        if placement.used_stored_placement:
            hits += 1

    benchmark.extra_info["outer_iterations"] = outer_iterations
    benchmark.extra_info["placements"] = structure.num_placements
    benchmark.extra_info["coverage"] = round(structure.marginal_coverage(), 3)
    benchmark.extra_info["mean_instantiation_cost"] = round(sum(costs) / len(costs), 2)
    benchmark.extra_info["stored_hit_fraction"] = round(hits / 40, 3)
    assert structure.num_placements >= 1
