"""Table 2 (generation columns) — one-time structure generation per circuit.

The paper reports CPU generation times growing from ~21 minutes (circ01,
4 blocks) to ~4 hours (benchmark24, 24 blocks).  Absolute numbers differ
(Python, scaled SA budgets); the *shape* to check is that generation time
grows with circuit size while the structure still stores multiple
placements.
"""

import pytest

from repro.benchcircuits.library import get_benchmark
from repro.core.generator import MultiPlacementGenerator
from benchmarks.conftest import bench_scale

#: A small/medium/large slice of Table 1; set REPRO_BENCH_SCALE=full and add
#: circuits here to run the complete table.
CIRCUITS = ["circ01", "two_stage_opamp", "mixer", "tso_cascode"]


@pytest.mark.parametrize("circuit_name", CIRCUITS)
def test_table2_generation(benchmark, circuit_name):
    scale = bench_scale()
    circuit = get_benchmark(circuit_name)
    config = scale.generator_config(circuit, seed=0)

    def generate():
        return MultiPlacementGenerator(circuit, config).generate_with_stats()

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    benchmark.extra_info["placements"] = result.num_placements
    benchmark.extra_info["coverage"] = round(result.structure.marginal_coverage(), 3)
    benchmark.extra_info["blocks"] = circuit.num_blocks
    assert result.num_placements >= 1
    result.structure.check_invariants()
