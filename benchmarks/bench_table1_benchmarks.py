"""Table 1 — building the benchmark circuit suite.

Regenerates the paper's Table 1 (circuit statistics) and measures how long
building the whole suite takes; the statistics are asserted to match the
published numbers exactly.
"""

from repro.benchcircuits.library import TABLE1, all_benchmarks
from repro.experiments.table1 import table1_rows


def test_table1_statistics_match_paper(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == len(TABLE1)
    assert all(row["matches_paper"] for row in rows)


def test_table1_build_all_benchmarks(benchmark):
    circuits = benchmark(all_benchmarks)
    assert set(circuits) == set(TABLE1)
