"""Synthesis-loop comparison — the motivation behind the whole method.

Times one layout-inclusive sizing evaluation under each placement backend.
The shape to reproduce: the multi-placement structure and the template are
orders of magnitude faster per evaluation than per-instance annealing,
which is what makes them usable inside the sizing loop.
"""

import pytest

from repro.api import make_placer
from repro.core.generator import MultiPlacementGenerator
from repro.synthesis.loop import LayoutInclusiveSynthesis
from repro.synthesis.opamp_design import two_stage_opamp_design
from benchmarks.conftest import bench_scale


def _loop_for(backend_name):
    scale = bench_scale()
    design = two_stage_opamp_design()
    generator = MultiPlacementGenerator(
        design.circuit, scale.generator_config(design.circuit, seed=0)
    )
    structure = generator.generate()
    if backend_name == "mps":
        spec = {"kind": "mps", "structure": structure}
    elif backend_name == "template":
        spec = {"kind": "template", "seed": 0}
    else:
        spec = {"kind": "annealing", "iterations": scale.annealing_iterations, "seed": 0}
    backend = make_placer(spec, design.circuit, bounds=generator.bounds)
    return design, LayoutInclusiveSynthesis(
        design.sizing_model, design.performance_model, design.spec, backend, seed=0
    )


@pytest.mark.parametrize("backend_name", ["mps", "template", "annealing"])
def test_synthesis_evaluation(benchmark, backend_name):
    design, loop = _loop_for(backend_name)
    point = design.sizing_model.design_space.default_point()

    evaluation = benchmark.pedantic(
        lambda: loop.evaluate(point), rounds=3, iterations=1
    )
    benchmark.extra_info["backend"] = backend_name
    benchmark.extra_info["objective"] = round(evaluation.objective, 3)
    benchmark.extra_info["placement_source"] = evaluation.placement.source
    assert evaluation.performance.power_mw > 0
