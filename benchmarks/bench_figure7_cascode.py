"""Figure 7 — floorplan instantiation for the 21-module tso-cascode circuit.

Times repeated instantiation on the largest "realistic analog block" of the
benchmark suite and asserts the resulting floorplan is legal — the paper's
demonstration that the method scales to ~25-module circuits.
"""

import random

from repro.core.instantiator import PlacementInstantiator
from benchmarks.conftest import bench_scale  # noqa: F401  (fixture wiring)


def test_figure7_cascode_instantiation(benchmark, cascode_structure):
    generation, generator = cascode_structure
    structure = generation.structure
    circuit = structure.circuit
    instantiator = PlacementInstantiator(structure)
    rng = random.Random(2)
    samples = [
        [
            (rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h))
            for b in circuit.blocks
        ]
        for _ in range(32)
    ]
    counter = {"i": 0}

    def instantiate_one():
        dims = samples[counter["i"] % len(samples)]
        counter["i"] += 1
        return instantiator.instantiate(dims)

    placement = benchmark(instantiate_one)
    benchmark.extra_info["blocks"] = circuit.num_blocks
    benchmark.extra_info["placements"] = structure.num_placements
    benchmark.extra_info["generation_seconds"] = round(generation.elapsed_seconds, 2)

    rects = list(placement.rects.values())
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            assert not rects[i].intersects(rects[j])
