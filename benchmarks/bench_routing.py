"""Global-routing benchmarks and sanity bars.

Two acceptance gates ride in CI's smoke job:

* **Batched throughput** — routing 64 placements of the two-stage opamp
  (8 unique floorplans, duplicates answered by deduplication) completes
  and returns one layout per input.
* **Honest lower bound** — per-net routed wirelength is never below the
  net's HPWL (a rectilinear tree spanning the pins cannot beat the
  half-perimeter), and every circuit of the benchmark library routes
  with **zero overflow** at the default grid resolution and capacity.
"""

import random
import time

from repro.baselines.template import TemplatePlacer
from repro.benchcircuits.library import all_benchmarks, get_benchmark
from repro.cost.wirelength import per_net_wirelength
from repro.route import derive_bounds, route_batch, route_placement

#: Placements in the batched-routing workload.
BATCH_SIZE = 64
#: Unique floorplans inside the batch (the rest are duplicates).
UNIQUE_PLACEMENTS = 8


def _placements(circuit, unique=UNIQUE_PLACEMENTS, total=BATCH_SIZE, seed=5):
    """``total`` template placements over ``unique`` dimension vectors."""
    rng = random.Random(seed)
    placer = TemplatePlacer(circuit)
    vectors = [
        [(rng.randint(b.min_w, b.max_w), rng.randint(b.min_h, b.max_h)) for b in circuit.blocks]
        for _ in range(unique)
    ]
    return [placer.place(vectors[i % unique]) for i in range(total)]


def test_batched_routing_of_64_placements_completes():
    circuit = get_benchmark("two_stage_opamp")
    placements = _placements(circuit)

    start = time.perf_counter()
    batch = route_batch(circuit, placements)
    elapsed = time.perf_counter() - start

    assert batch.total_layouts == BATCH_SIZE
    assert batch.unique_layouts <= UNIQUE_PLACEMENTS
    assert batch.duplicate_layouts >= BATCH_SIZE - UNIQUE_PLACEMENTS
    print(
        f"\nrouted {batch.total_layouts} placements ({batch.unique_layouts} unique) "
        f"in {elapsed * 1000:.0f}ms"
    )

    # The sanity lower bound, per net, on every returned layout: a routed
    # tree spans the pins, so its length is at least the half-perimeter.
    for placement, layout in zip(placements, batch):
        bounds = derive_bounds(placement.rects)
        hpwl = per_net_wirelength(circuit, dict(placement.rects), bounds)
        for name, length in hpwl.items():
            assert layout.wirelength(name) >= length - 1e-9, (
                f"net {name}: routed {layout.wirelength(name):.3f} < HPWL {length:.3f}"
            )


def test_every_benchmark_circuit_routes_without_overflow():
    rows = []
    for name, circuit in all_benchmarks().items():
        placement = TemplatePlacer(circuit).place(circuit.min_dims())
        bounds = derive_bounds(placement.rects)
        layout = route_placement(circuit, placement, bounds=bounds)

        assert layout.failed_nets == (), f"{name}: unrouted nets {layout.failed_nets}"
        assert layout.overflow == 0, f"{name}: overflow {layout.overflow}"

        hpwl = per_net_wirelength(circuit, dict(placement.rects), bounds)
        for net_name, length in hpwl.items():
            assert layout.wirelength(net_name) >= length - 1e-9, (
                f"{name}/{net_name}: routed {layout.wirelength(net_name):.3f} "
                f"< HPWL {length:.3f}"
            )
        total_hpwl = sum(hpwl.values())
        detour = layout.total_wirelength / total_hpwl if total_hpwl else 1.0
        rows.append(
            f"{name:>20}: {len(layout.nets):3d} nets, "
            f"wl {layout.total_wirelength:8.1f} ({detour:4.2f}x HPWL), "
            f"congestion {layout.max_congestion}, "
            f"{layout.elapsed_seconds * 1000:5.1f}ms"
        )
    print("\n" + "\n".join(rows))
