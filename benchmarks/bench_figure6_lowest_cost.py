"""Figure 6 — lowest-cost placement selection along a 1-D size sweep.

The bench times the full sweep evaluation (per-placement curves plus the
structure-selected curve) and asserts the figure's claim: the structure's
selected cost tracks the lower envelope of the individual placement
curves.
"""

from repro.experiments.figure6 import run_figure6
from benchmarks.conftest import bench_scale


def test_figure6_lowest_cost_selection(benchmark):
    scale = bench_scale()

    def run_sweep():
        return run_figure6(scale=scale, seed=0, sweep_points=10)

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    benchmark.extra_info["sweep_block"] = result.sweep_block
    benchmark.extra_info["sweep_points"] = len(result.sweep_values)
    benchmark.extra_info["stored_placements"] = len(result.placement_curves)
    benchmark.extra_info["envelope_gap"] = round(result.envelope_gap, 4)

    assert result.tracks_lower_envelope
    assert len(result.selected_costs) == len(result.sweep_values)
