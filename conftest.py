"""Repository-level pytest configuration.

Lives at the rootdir so its options are registered no matter which test
subtree is invoked (``pytest_addoption`` only works in initial conftests).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Regenerate the golden regression fixtures under tests/golden/fixtures "
            "from the current code instead of comparing against them."
        ),
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden fixtures instead of asserting."""
    return bool(request.config.getoption("--update-golden"))
